"""Process supervision for the sharded ingest tier.

:class:`ShardedIngestService` owns the whole stack: it spawns N shard
worker processes (``spawn`` context — the front door runs threads in
this process, and forking a threaded parent is a deadlock lottery),
waits for each worker to publish its bound port, wires
:class:`~repro.server.sharded.frontdoor.RemoteShardBackend` pools into
a coordinator, and starts the front door.  ``kill_shard`` /
``restart_shard`` are the crash-drill API the kill-and-replay test
(and the CI ingest smoke) drive: SIGKILL the process, restart it on
the same data directory, and the worker's WAL replay restores every
acknowledged record.

With ``supervise=True`` a
:class:`~repro.server.sharded.supervisor.ShardSupervisor` watches the
workers and restarts dead or wedged ones automatically — with
exponential backoff, and fencing a shard that flaps past its restart
budget (its cells then report honestly uncovered).  Supervision is
opt-in here and default-on in ``python -m repro serve``: crash-drill
tests kill shards on purpose and must not race a watchdog.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Set

from repro.exceptions import TransportError
from repro.server.sharded.coordinator import (
    FencedShardBackend,
    ShardedCoordinator,
)
from repro.server.sharded.frontdoor import FrontDoor, RemoteShardBackend
from repro.server.sharded.router import ShardRouter
from repro.server.sharded.supervisor import RestartPolicy, ShardSupervisor
from repro.server.sharded.worker import ShardConfig, run_shard

logger = logging.getLogger("repro.server.sharded")

#: How long to wait for a spawned worker to publish its port.
_STARTUP_TIMEOUT = 30.0


class ShardedIngestService:
    """Spawns, supervises and tears down a sharded ingest tier.

    Parameters
    ----------
    n_shards:
        Worker process count (>= 1).
    data_dir:
        Root directory; shard ``k`` lives in ``<data_dir>/shard-<k>``.
    host / port:
        Front-door listening address (port 0 picks a free port).
    s / load_factor:
        Estimator parameters for every shard's server.
    shard_metrics:
        Enable per-worker metric registries (folded into the front
        door's ``stats()`` reply).
    shard_telemetry:
        Give each worker a telemetry-exporting trace buffer so its
        spans ship to the front door (see
        :class:`~repro.obs.cluster.ClusterTelemetry`).
    timeout:
        Socket timeout (seconds) of every front-door-to-shard
        connection.
    max_inflight:
        Front-door concurrent-request bound (None disables shedding).
    supervise:
        Run a :class:`~repro.server.sharded.supervisor.ShardSupervisor`
        that auto-restarts dead/wedged workers.
    restart_policy:
        Supervision knobs (defaults to
        :class:`~repro.server.sharded.supervisor.RestartPolicy`).
    """

    def __init__(
        self,
        n_shards: int,
        data_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        s: int = 3,
        load_factor: float = 2.0,
        shard_metrics: bool = True,
        shard_telemetry: bool = True,
        timeout: float = 10.0,
        max_inflight: Optional[int] = 64,
        supervise: bool = False,
        restart_policy: Optional[RestartPolicy] = None,
    ):
        if n_shards < 1:
            raise TransportError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._data_dir = Path(data_dir)
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._max_inflight = max_inflight
        self._supervise = bool(supervise)
        self._restart_policy = (
            restart_policy if restart_policy is not None else RestartPolicy()
        )
        self._mp = multiprocessing.get_context("spawn")
        self._configs: Dict[int, ShardConfig] = {
            shard: ShardConfig(
                shard_id=shard,
                data_dir=str(self._data_dir / f"shard-{shard}"),
                host=host,
                s=s,
                load_factor=load_factor,
                metrics=shard_metrics,
                telemetry=shard_telemetry,
            )
            for shard in range(self._n_shards)
        }
        self._processes: Dict[int, multiprocessing.Process] = {}
        #: Guards every spawn/kill/restart/fence transition, so the
        #: supervisor thread and drill/test code never race a respawn.
        self._lifecycle = threading.RLock()
        #: Shards killed on purpose (manual drill) — off-limits to the
        #: supervisor until restarted.
        self._held: Set[int] = set()
        #: Shard -> fencing reason for shards past their restart budget.
        self._fenced: Dict[int, str] = {}
        self._restart_counts: Dict[int, int] = {}
        self.coordinator: Optional[ShardedCoordinator] = None
        self.front_door: Optional[FrontDoor] = None
        self.supervisor: Optional[ShardSupervisor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def host(self) -> str:
        return self._host

    @property
    def timeout(self) -> float:
        """Socket timeout of front-door-to-shard connections."""
        return self._timeout

    @property
    def port(self) -> int:
        """The front door's bound port (after :meth:`start`)."""
        if self.front_door is None:
            raise TransportError("service is not started")
        return self.front_door.port

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self.port}"

    @property
    def running(self) -> bool:
        """True while the front door is accepting connections.

        Goes False after :meth:`stop` — including the remote-initiated
        stop a ``MSG_SHUTDOWN`` client triggers — so a serving loop
        can poll it instead of sleeping forever.
        """
        return self.front_door is not None and self.front_door.running

    def shard_port(self, shard: int) -> int:
        """The bound port of one worker (from its port file)."""
        return int(self._configs[shard].port_file.read_text().strip())

    def shard_alive(self, shard: int) -> bool:
        """Whether the shard's worker process is currently running."""
        process = self._processes.get(shard)
        return process is not None and process.is_alive()

    def is_held(self, shard: int) -> bool:
        """Whether the shard was killed on purpose (supervisor keeps off)."""
        return shard in self._held

    def is_fenced(self, shard: int) -> bool:
        """Whether the shard is permanently fenced (restart budget gone)."""
        return shard in self._fenced

    @property
    def fenced(self) -> Dict[int, str]:
        """Fenced shard -> reason (read-only copy)."""
        return dict(self._fenced)

    def restart_count(self, shard: int) -> int:
        """How many times this shard has been respawned since start."""
        return self._restart_counts.get(shard, 0)

    def _spawn(self, shard: int) -> None:
        config = self._configs[shard]
        Path(config.data_dir).mkdir(parents=True, exist_ok=True)
        # A stale port file from a killed incarnation must not be
        # mistaken for the new worker's announcement.
        try:
            config.port_file.unlink()
        except FileNotFoundError:
            pass
        process = self._mp.Process(
            target=run_shard, args=(config,), name=f"shard-{shard}"
        )
        process.daemon = True
        process.start()
        self._processes[shard] = process

    def _await_port(self, shard: int) -> int:
        config = self._configs[shard]
        process = self._processes[shard]
        deadline = time.monotonic() + _STARTUP_TIMEOUT
        while time.monotonic() < deadline:
            if config.port_file.exists():
                text = config.port_file.read_text().strip()
                if text:
                    return int(text)
            if not process.is_alive():
                raise TransportError(
                    f"shard {shard} exited with code {process.exitcode} "
                    "before publishing its port"
                )
            time.sleep(0.02)
        raise TransportError(
            f"shard {shard} did not publish a port within "
            f"{_STARTUP_TIMEOUT:.0f}s"
        )

    def _make_backend(self, shard: int, port: int) -> RemoteShardBackend:
        return RemoteShardBackend(
            shard, self._host, port, timeout=self._timeout
        )

    def start(self) -> int:
        """Spawn every worker, start the front door; returns its port."""
        if self.front_door is not None:
            raise TransportError("service is already started")
        with self._lifecycle:
            for shard in range(self._n_shards):
                self._spawn(shard)
            backends = {
                shard: self._make_backend(shard, self._await_port(shard))
                for shard in range(self._n_shards)
            }
            self.coordinator = ShardedCoordinator(
                backends, router=ShardRouter(self._n_shards)
            )
            self.front_door = FrontDoor(
                self.coordinator,
                host=self._host,
                port=self._port,
                max_inflight=self._max_inflight,
            )
            port = self.front_door.start()
            if self._supervise:
                self.supervisor = ShardSupervisor(self, self._restart_policy)
                self.supervisor.start()
            return port

    def kill_shard(self, shard: int, auto_restart: bool = False) -> None:
        """SIGKILL one worker — no flush, no goodbye (the crash drill).

        By default the shard is *held* afterwards: a running supervisor
        will not resurrect it until :meth:`restart_shard` clears the
        hold (a crash drill wants the corpse to stay down while it
        checks degraded answers).  ``auto_restart=True`` leaves the
        shard eligible for supervised restart.
        """
        with self._lifecycle:
            if not auto_restart:
                self._held.add(shard)
            process = self._processes[shard]
            process.kill()
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - unkillable
                logger.warning(
                    "shard %d still alive 10s after SIGKILL", shard
                )

    def respawn_shard(self, shard: int) -> int:
        """Respawn a dead worker and swap in its new backend.

        The supervised-restart primitive: recovers the shard (WAL
        replay before first accept) and clears a manual hold, but does
        *not* touch fencing or supervision history — that is
        :meth:`restart_shard`'s (the human operator's) privilege.
        """
        with self._lifecycle:
            process = self._processes.get(shard)
            if process is not None and process.is_alive():
                raise TransportError(
                    f"shard {shard} is still running; kill it first"
                )
            self._spawn(shard)
            port = self._await_port(shard)
            if self.coordinator is not None:
                self.coordinator.replace_backend(
                    shard, self._make_backend(shard, port)
                )
            self._held.discard(shard)
            self._restart_counts[shard] = (
                self._restart_counts.get(shard, 0) + 1
            )
            return port

    def restart_shard(self, shard: int) -> int:
        """Manually respawn a (dead) worker; returns its new port.

        The new incarnation replays its WAL into the shard archive
        before accepting connections, so every previously acknowledged
        record is queryable again.  The coordinator's backend is
        swapped to the new port, a fence on the shard is lifted, and
        the supervisor's failure history for it is forgotten.
        """
        with self._lifecycle:
            port = self.respawn_shard(shard)
            self._fenced.pop(shard, None)
            if self.supervisor is not None:
                self.supervisor.reset(shard)
            return port

    def cluster_telemetry(
        self,
        buffer=None,
        registry=None,
        max_staleness: float = 1.0,
    ):
        """Build (once) the cluster telemetry collector for this tier.

        Returns a :class:`~repro.obs.cluster.ClusterTelemetry` wired to
        this service and attached to the coordinator, so telemetry
        piggy-backed on ``stats()`` pulls is absorbed into the
        front-door trace buffer.  Idempotent: repeated calls return
        the same collector.
        """
        from repro.obs.cluster import ClusterTelemetry

        existing = getattr(self, "_cluster_telemetry", None)
        if existing is not None:
            return existing
        collector = ClusterTelemetry(
            self,
            buffer=buffer,
            registry=registry,
            max_staleness=max_staleness,
        )
        self._cluster_telemetry = collector
        if self.coordinator is not None:
            self.coordinator.telemetry_collector = collector
        return collector

    def fence_shard(self, shard: int, reason: str) -> None:
        """Mark a shard permanently dead and tombstone its backend.

        Queries keep answering with the shard's cells honestly
        uncovered; the supervisor stops trying to restart it.  Lifted
        only by a manual :meth:`restart_shard`.
        """
        with self._lifecycle:
            self._fenced[shard] = reason
            if self.coordinator is not None:
                self.coordinator.replace_backend(
                    shard, FencedShardBackend(shard, reason)
                )

    def stop(self) -> None:
        """Stop the supervisor, the front door, and every worker.

        Shutdown is asserted, not assumed: a worker ignoring SIGTERM
        past the join grace is SIGKILLed, and either escalation is
        logged rather than silently swallowed.
        """
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self.front_door is not None:
            self.front_door.stop()
            self.front_door = None
        if self.coordinator is not None:
            for backend in self.coordinator.backends.values():
                if isinstance(backend, RemoteShardBackend):
                    backend.shutdown()
            self.coordinator.close()
            self.coordinator = None
        with self._lifecycle:
            for process in self._processes.values():
                if process.is_alive():
                    process.terminate()
            for shard, process in self._processes.items():
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - stuck worker
                    logger.warning(
                        "shard %d ignored SIGTERM for 10s; escalating "
                        "to SIGKILL",
                        shard,
                    )
                    process.kill()
                    process.join(timeout=5)
                    if process.is_alive():  # pragma: no cover
                        logger.error(
                            "shard %d still alive after SIGKILL", shard
                        )
            self._processes.clear()
            self._held.clear()
            self._fenced.clear()

    def __enter__(self) -> "ShardedIngestService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
