"""Process supervision for the sharded ingest tier.

:class:`ShardedIngestService` owns the whole stack: it spawns N shard
worker processes (``spawn`` context — the front door runs threads in
this process, and forking a threaded parent is a deadlock lottery),
waits for each worker to publish its bound port, wires
:class:`~repro.server.sharded.frontdoor.RemoteShardBackend` pools into
a coordinator, and starts the front door.  ``kill_shard`` /
``restart_shard`` are the crash-drill API the kill-and-replay test
(and the CI ingest smoke) drive: SIGKILL the process, restart it on
the same data directory, and the worker's WAL replay restores every
acknowledged record.
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import Dict, Optional

from repro.exceptions import TransportError
from repro.server.sharded.coordinator import ShardedCoordinator
from repro.server.sharded.frontdoor import FrontDoor, RemoteShardBackend
from repro.server.sharded.router import ShardRouter
from repro.server.sharded.worker import ShardConfig, run_shard

#: How long to wait for a spawned worker to publish its port.
_STARTUP_TIMEOUT = 30.0


class ShardedIngestService:
    """Spawns, supervises and tears down a sharded ingest tier.

    Parameters
    ----------
    n_shards:
        Worker process count (>= 1).
    data_dir:
        Root directory; shard ``k`` lives in ``<data_dir>/shard-<k>``.
    host / port:
        Front-door listening address (port 0 picks a free port).
    s / load_factor:
        Estimator parameters for every shard's server.
    shard_metrics:
        Enable per-worker metric registries (folded into the front
        door's ``stats()`` reply).
    """

    def __init__(
        self,
        n_shards: int,
        data_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        s: int = 3,
        load_factor: float = 2.0,
        shard_metrics: bool = True,
    ):
        if n_shards < 1:
            raise TransportError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._data_dir = Path(data_dir)
        self._host = host
        self._port = int(port)
        self._mp = multiprocessing.get_context("spawn")
        self._configs: Dict[int, ShardConfig] = {
            shard: ShardConfig(
                shard_id=shard,
                data_dir=str(self._data_dir / f"shard-{shard}"),
                host=host,
                s=s,
                load_factor=load_factor,
                metrics=shard_metrics,
            )
            for shard in range(self._n_shards)
        }
        self._processes: Dict[int, multiprocessing.Process] = {}
        self.coordinator: Optional[ShardedCoordinator] = None
        self.front_door: Optional[FrontDoor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def port(self) -> int:
        """The front door's bound port (after :meth:`start`)."""
        if self.front_door is None:
            raise TransportError("service is not started")
        return self.front_door.port

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self.port}"

    @property
    def running(self) -> bool:
        """True while the front door is accepting connections.

        Goes False after :meth:`stop` — including the remote-initiated
        stop a ``MSG_SHUTDOWN`` client triggers — so a serving loop
        can poll it instead of sleeping forever.
        """
        return self.front_door is not None and self.front_door.running

    def shard_port(self, shard: int) -> int:
        """The bound port of one worker (from its port file)."""
        return int(self._configs[shard].port_file.read_text().strip())

    def _spawn(self, shard: int) -> None:
        config = self._configs[shard]
        Path(config.data_dir).mkdir(parents=True, exist_ok=True)
        # A stale port file from a killed incarnation must not be
        # mistaken for the new worker's announcement.
        try:
            config.port_file.unlink()
        except FileNotFoundError:
            pass
        process = self._mp.Process(
            target=run_shard, args=(config,), name=f"shard-{shard}"
        )
        process.daemon = True
        process.start()
        self._processes[shard] = process

    def _await_port(self, shard: int) -> int:
        config = self._configs[shard]
        process = self._processes[shard]
        deadline = time.monotonic() + _STARTUP_TIMEOUT
        while time.monotonic() < deadline:
            if config.port_file.exists():
                text = config.port_file.read_text().strip()
                if text:
                    return int(text)
            if not process.is_alive():
                raise TransportError(
                    f"shard {shard} exited with code {process.exitcode} "
                    "before publishing its port"
                )
            time.sleep(0.02)
        raise TransportError(
            f"shard {shard} did not publish a port within "
            f"{_STARTUP_TIMEOUT:.0f}s"
        )

    def start(self) -> int:
        """Spawn every worker, start the front door; returns its port."""
        if self.front_door is not None:
            raise TransportError("service is already started")
        for shard in range(self._n_shards):
            self._spawn(shard)
        backends = {
            shard: RemoteShardBackend(
                shard, self._host, self._await_port(shard)
            )
            for shard in range(self._n_shards)
        }
        self.coordinator = ShardedCoordinator(
            backends, router=ShardRouter(self._n_shards)
        )
        self.front_door = FrontDoor(
            self.coordinator, host=self._host, port=self._port
        )
        return self.front_door.start()

    def kill_shard(self, shard: int) -> None:
        """SIGKILL one worker — no flush, no goodbye (the crash drill)."""
        process = self._processes[shard]
        process.kill()
        process.join(timeout=10)

    def restart_shard(self, shard: int) -> int:
        """Respawn a (dead) worker on its data dir; returns its port.

        The new incarnation replays its WAL into the shard archive
        before accepting connections, so every previously acknowledged
        record is queryable again.  The coordinator's backend is
        swapped to the new port.
        """
        process = self._processes.get(shard)
        if process is not None and process.is_alive():
            raise TransportError(
                f"shard {shard} is still running; kill it first"
            )
        self._spawn(shard)
        port = self._await_port(shard)
        if self.coordinator is not None:
            self.coordinator.replace_backend(
                shard, RemoteShardBackend(shard, self._host, port)
            )
        return port

    def stop(self) -> None:
        """Stop the front door and terminate every worker."""
        if self.front_door is not None:
            self.front_door.stop()
            self.front_door = None
        if self.coordinator is not None:
            for backend in self.coordinator.backends.values():
                if isinstance(backend, RemoteShardBackend):
                    backend.shutdown()
            self.coordinator.close()
            self.coordinator = None
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5)
        self._processes.clear()

    def __enter__(self) -> "ShardedIngestService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
