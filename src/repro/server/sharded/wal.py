"""Per-shard append-only write-ahead log.

A shard acknowledges an upload only after the record payload is
appended (and flushed to the OS) here, so a SIGKILLed shard process
loses *no acknowledged record*: on restart the log is replayed into
the shard's :class:`~repro.server.persistence.RecordArchive` as
orphaned ``.record`` files, and the archive's existing crash-recovery
path — :meth:`~repro.server.persistence.RecordArchive.repair` —
adopts, validates, or quarantines them exactly as it does for its own
crash-mid-save orphans.  One recovery code path, two crash sources.

Entry layout (all integers little-endian)::

    u32 payload length | u32 crc32(payload) | payload bytes

A torn tail entry (the process died mid-append) fails its length or
CRC check and replay stops there — everything before it was flushed
before its ack left the socket, so acknowledged records always parse.

Durability model: :meth:`append` flushes Python's buffer to the OS on
every entry (surviving process kills) but only ``fsync``\\ s on
:meth:`sync` and :meth:`close` — the tier's stated guarantee is
replay-after-SIGKILL, not power-loss durability, and a per-record
fsync would put a disk round-trip on the ingest hot path.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.exceptions import DataError, ReproError
from repro.rsu.record import TrafficRecord
from repro.server.persistence import RecordArchive, record_filename

_ENTRY_HEADER = struct.Struct("<II")


class ShardWriteAheadLog:
    """Append-only log of upload payloads for one shard."""

    def __init__(self, path):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "ab")
        self._entries_written = 0

    @property
    def path(self) -> Path:
        """Where the log lives on disk."""
        return self._path

    @property
    def entries_written(self) -> int:
        """Entries appended through this handle (not counting replays)."""
        return self._entries_written

    def append(self, payload: bytes) -> None:
        """Append one record payload; flushed to the OS before returning."""
        self._handle.write(
            _ENTRY_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        self._handle.flush()
        self._entries_written += 1

    def sync(self) -> None:
        """Force the log to stable storage (fsync)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Sync and close the log handle."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def truncate(self) -> None:
        """Drop every entry (records now durable elsewhere)."""
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()

    def replay(self) -> Iterator[bytes]:
        """Yield every intact payload, oldest first.

        Stops silently at the first torn or corrupt tail entry; a
        corrupt entry *followed by intact ones* raises
        :class:`~repro.exceptions.DataError` instead, because that is
        not a torn tail — it is unexplained damage the operator should
        see.
        """
        self._handle.flush()
        data = self._path.read_bytes()
        offset, total = 0, len(data)
        pending_error = None
        while offset < total:
            if offset + _ENTRY_HEADER.size > total:
                pending_error = "torn entry header"
                break
            length, crc = _ENTRY_HEADER.unpack_from(data, offset)
            start = offset + _ENTRY_HEADER.size
            if start + length > total:
                pending_error = "torn entry payload"
                break
            payload = data[start : start + length]
            if zlib.crc32(payload) != crc:
                pending_error = "entry failed its CRC"
                break
            yield payload
            offset = start + length
        if pending_error is not None and self._has_intact_entry_after(
            data, offset
        ):
            raise DataError(
                f"write-ahead log {self._path} is corrupt mid-file "
                f"({pending_error} at byte {offset}, with intact entries "
                "after it)"
            )

    @staticmethod
    def _has_intact_entry_after(data: bytes, offset: int) -> bool:
        """Scan past a bad entry for any parseable later entry."""
        total = len(data)
        probe = offset + 1
        while probe + _ENTRY_HEADER.size <= total:
            length, crc = _ENTRY_HEADER.unpack_from(data, probe)
            start = probe + _ENTRY_HEADER.size
            if start + length <= total:
                if zlib.crc32(data[start : start + length]) == crc:
                    return True
            probe += 1
        return False


def replay_into_archive(
    wal: ShardWriteAheadLog, archive_directory
) -> Tuple[RecordArchive, List[Tuple[int, int]]]:
    """Recover a shard's records: WAL → orphan files → archive repair.

    Each intact WAL payload is decoded and written as an *orphaned*
    ``.record`` file in ``archive_directory`` (skipping names the
    directory already has — earlier recoveries or archive saves own
    those), then :meth:`RecordArchive.recover` runs the ordinary
    orphan-adoption repair.  Undecodable WAL payloads are skipped — the
    repair pass would quarantine them anyway, but they never earned an
    ack so nothing is owed.

    Returns the repaired archive and the ``(location, period)`` pairs
    the repair pass recovered.  On success the WAL is truncated: its
    records are now durable (fsynced, checksummed, manifest-indexed)
    in the archive.
    """
    directory = Path(archive_directory)
    directory.mkdir(parents=True, exist_ok=True)
    for payload in wal.replay():
        try:
            record = TrafficRecord.from_payload(payload)
        except (ReproError, ValueError):
            continue
        path = directory / record_filename(record.location, record.period)
        if path.exists():
            continue
        path.write_bytes(payload)
    archive, report = RecordArchive.recover(directory)
    wal.truncate()
    return archive, list(report.recovered)
