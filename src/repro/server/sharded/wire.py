"""Length-prefixed socket framing for the sharded ingest tier.

The RFR1/RFR2 layouts of :mod:`repro.faults.transport` are the *upload
payload* wire format — checksummed, trace-carrying, dead-letterable.
This module gives them an actual stream transport: every message on a
TCP connection is

.. code-block:: text

    u32 big-endian body length | u8 message type | body

so a reader always knows exactly how many bytes to consume, and a
corrupted RFR frame arrives *intact as a message* for the shard edge
to checksum-reject and dead-letter (stream framing and payload
integrity are deliberately separate layers).

Record bodies inside RFR frames are the :mod:`repro.sketch.serial`
payload format verbatim — packed little-endian ``uint64`` words under a
16-byte header (or a sparse/RLE body when the sender compressed) are
the canonical wire form, so the receiving shard adopts the words with
no bool round-trip.  Frames recorded by older senders carry the legacy
v1 (``packbits``) body and still decode through the serial layer's
compatibility reader, which is what keeps seed-era WAL segments
replayable byte-for-byte.

Upload acks, query results and stats replies are UTF-8 JSON bodies.
Estimate serialization round-trips every IEEE double exactly (Python's
JSON emits shortest-round-trip reprs), so a remote query answer
compares bit-for-bit equal to the in-process one.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from typing import List, Optional, Tuple

from repro.core.results import PointEstimate, PointToPointEstimate
from repro.exceptions import TransportError, WireProtocolError
from repro.faults.transport import FRAME_MAGIC, TRACED_MAGIC, _HEADER_BYTES
from repro.obs.trace import CONTEXT_BYTES
from repro.server.degradation import CoverageReport, DegradedResult

#: Requests.
MSG_UPLOAD = 0x01
MSG_UPLOAD_BATCH = 0x02
MSG_QUERY = 0x03
MSG_STATS = 0x04
MSG_PING = 0x05
MSG_SHUTDOWN = 0x06
#: A deadline envelope: ``f64 budget seconds | u8 inner type | body``.
MSG_DEADLINE = 0x07
#: Drain a worker's buffered telemetry (closed spans + bindings).
MSG_TELEMETRY = 0x08
#: Responses.
MSG_ACK = 0x81
MSG_ACK_BATCH = 0x82
MSG_RESULT = 0x83
MSG_ERROR = 0x84
MSG_STATS_REPLY = 0x85
MSG_PONG = 0x86
#: Load-shed reply: the server refused the request; the JSON body's
#: ``retry_after`` (seconds) tells the sender when to try again.
MSG_BUSY = 0x87
#: A drained telemetry payload: ``{"spans": [...], "bindings": [...]}``.
MSG_TELEMETRY_REPLY = 0x88

_HEADER = struct.Struct(">IB")
#: Upper bound on one message body; far above any real record batch,
#: low enough that a garbled length prefix cannot OOM the server.
MAX_BODY_BYTES = 64 * 1024 * 1024


def send_message(sock: socket.socket, msg_type: int, body: bytes = b"") -> None:
    """Write one length-prefixed message to a connected socket."""
    if len(body) > MAX_BODY_BYTES:
        raise WireProtocolError(
            f"message body of {len(body)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte wire limit"
        )
    if not 0 <= int(msg_type) <= 0xFF:
        raise WireProtocolError(
            f"message type 0x{int(msg_type):x} does not fit the u8 type byte"
        )
    sock.sendall(_HEADER.pack(len(body), msg_type) + body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on a clean EOF at byte 0."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise WireProtocolError(
                f"connection closed {remaining} bytes short of a "
                f"{count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """Read one message; None when the peer closed between messages.

    Structural damage — a truncated header or body, an announced
    length past :data:`MAX_BODY_BYTES` — raises the typed
    :class:`~repro.exceptions.WireProtocolError` so servers can drop
    the connection without leaking ``struct.error`` or bare
    ``ConnectionError`` to their dispatch loops.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, msg_type = _HEADER.unpack(header)
    if length > MAX_BODY_BYTES:
        raise WireProtocolError(
            f"announced message body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte wire limit"
        )
    body = _recv_exact(sock, length) if length else b""
    if length and body is None:
        raise WireProtocolError(
            "connection closed between the message header and its "
            f"{length}-byte body"
        )
    return msg_type, body or b""


def send_json(sock: socket.socket, msg_type: int, payload: dict) -> None:
    """Send a JSON-bodied message."""
    send_message(
        sock, msg_type, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def decode_json(body: bytes) -> dict:
    """Decode a JSON message body, wrapping failures as wire errors."""
    if not body:
        raise WireProtocolError("zero-length body where JSON was expected")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(
            f"undecodable JSON message body: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Deadlines on the wire
# ----------------------------------------------------------------------

_DEADLINE_HEADER = struct.Struct(">dB")


class Deadline:
    """An absolute give-up time, carried on the wire as remaining budget.

    Clocks are not assumed synchronized between processes: what
    crosses the socket is the *remaining* budget in seconds
    (:meth:`remaining`), and each receiver re-anchors it against its
    own monotonic clock.  Skew therefore only ever costs the one-way
    latency of the message itself.
    """

    __slots__ = ("_at",)

    def __init__(self, at: float):
        self._at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (monotonic)."""
        return cls(time.monotonic() + float(seconds))

    @property
    def remaining(self) -> float:
        """Seconds left before the deadline (negative when past it)."""
        return self._at - time.monotonic()

    @property
    def expired(self) -> bool:
        """True once the budget has run out."""
        return self.remaining <= 0.0

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining:.3f}s)"


def wrap_deadline(
    msg_type: int, body: bytes, deadline: Deadline
) -> Tuple[int, bytes]:
    """Envelope a request in a :data:`MSG_DEADLINE` frame.

    Returns the ``(msg_type, body)`` pair to put on the wire; the
    remaining budget is sampled at call time, so wrap immediately
    before sending.
    """
    return (
        MSG_DEADLINE,
        _DEADLINE_HEADER.pack(deadline.remaining, msg_type) + body,
    )


def unwrap_deadline(body: bytes) -> Tuple[Deadline, int, bytes]:
    """Inverse of :func:`wrap_deadline`, re-anchored to this clock."""
    if len(body) < _DEADLINE_HEADER.size:
        raise WireProtocolError(
            f"deadline envelope of {len(body)} bytes is shorter than its "
            f"{_DEADLINE_HEADER.size}-byte header"
        )
    budget, inner_type = _DEADLINE_HEADER.unpack_from(body)
    if budget != budget or budget in (float("inf"), float("-inf")):
        raise WireProtocolError(f"non-finite deadline budget {budget!r}")
    return (
        Deadline.after(budget),
        inner_type,
        body[_DEADLINE_HEADER.size :],
    )


# ----------------------------------------------------------------------
# Batched upload framing
# ----------------------------------------------------------------------

_SUBFRAME = struct.Struct(">I")


def pack_frames(frames: List[bytes]) -> bytes:
    """Concatenate upload frames into one ``MSG_UPLOAD_BATCH`` body."""
    parts: List[bytes] = []
    for frame in frames:
        parts.append(_SUBFRAME.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def unpack_frames(body: bytes) -> List[bytes]:
    """Inverse of :func:`pack_frames`.

    A batch whose sub-frame table is structurally damaged — truncated
    lengths, a zero-length sub-frame (no RFR frame is empty), a length
    running past the body — raises
    :class:`~repro.exceptions.WireProtocolError`.
    """
    frames: List[bytes] = []
    offset = 0
    total = len(body)
    while offset < total:
        if offset + _SUBFRAME.size > total:
            raise WireProtocolError("truncated sub-frame length in batch")
        (length,) = _SUBFRAME.unpack_from(body, offset)
        offset += _SUBFRAME.size
        if length == 0:
            raise WireProtocolError(
                f"zero-length sub-frame at byte {offset - _SUBFRAME.size} "
                "of batch"
            )
        if offset + length > total:
            raise WireProtocolError("truncated sub-frame in batch")
        frames.append(body[offset : offset + length])
        offset += length
    return frames


# ----------------------------------------------------------------------
# Routing peek
# ----------------------------------------------------------------------


def peek_location(frame: bytes) -> Optional[int]:
    """The location ID an upload frame claims, without verifying it.

    The front door routes on this — a cheap fixed-offset read of the
    record payload's location header, *not* a checksum pass (integrity
    stays the shard edge's job).  Returns None when the frame is too
    short or mis-magicked to even claim a location; such frames cannot
    be routed and are dead-lettered at the front door.  A frame whose
    corruption hit the location bytes routes to the "wrong" shard and
    is checksum-rejected there, which is just as dead.
    """
    magic = frame[: len(FRAME_MAGIC)]
    if magic == TRACED_MAGIC:
        offset = _HEADER_BYTES + CONTEXT_BYTES
    elif magic == FRAME_MAGIC:
        offset = _HEADER_BYTES
    else:
        return None
    if len(frame) < offset + 8:
        return None
    return int.from_bytes(frame[offset : offset + 8], "little")


# ----------------------------------------------------------------------
# Estimate / result serialization
# ----------------------------------------------------------------------


def encode_estimate(value) -> dict:
    """Serialize an estimator result (or float) to a JSON-safe dict."""
    if isinstance(value, PointEstimate):
        return {
            "type": "point",
            "estimate": value.estimate,
            "v_a0": value.v_a0,
            "v_b0": value.v_b0,
            "v_star1": value.v_star1,
            "size": value.size,
            "periods": value.periods,
        }
    if isinstance(value, PointToPointEstimate):
        return {
            "type": "point_to_point",
            "estimate": value.estimate,
            "v_0": value.v_0,
            "v_prime_0": value.v_prime_0,
            "v_double_prime_0": value.v_double_prime_0,
            "size_small": value.size_small,
            "size_large": value.size_large,
            "s": value.s,
            "periods": value.periods,
            "swapped": value.swapped,
        }
    if isinstance(value, float):
        return {"type": "float", "estimate": value}
    raise TransportError(
        f"cannot serialize estimate of type {type(value).__name__}"
    )


def decode_estimate(payload: dict):
    """Inverse of :func:`encode_estimate` — rebuilds the dataclass."""
    kind = payload.get("type")
    if kind == "point":
        return PointEstimate(
            estimate=payload["estimate"],
            v_a0=payload["v_a0"],
            v_b0=payload["v_b0"],
            v_star1=payload["v_star1"],
            size=payload["size"],
            periods=payload["periods"],
        )
    if kind == "point_to_point":
        return PointToPointEstimate(
            estimate=payload["estimate"],
            v_0=payload["v_0"],
            v_prime_0=payload["v_prime_0"],
            v_double_prime_0=payload["v_double_prime_0"],
            size_small=payload["size_small"],
            size_large=payload["size_large"],
            s=payload["s"],
            periods=payload["periods"],
            swapped=payload["swapped"],
        )
    if kind == "float":
        return payload["estimate"]
    raise TransportError(f"cannot deserialize estimate of kind {kind!r}")


def encode_degraded(result: DegradedResult) -> dict:
    """Serialize a coverage-wrapped estimate."""
    return {
        "type": "degraded",
        "value": encode_estimate(result.value),
        "requested": list(result.coverage.requested),
        "covered": list(result.coverage.covered),
    }


def decode_degraded(payload: dict) -> DegradedResult:
    """Inverse of :func:`encode_degraded`."""
    return DegradedResult(
        value=decode_estimate(payload["value"]),
        coverage=CoverageReport(
            requested=tuple(payload["requested"]),
            covered=tuple(payload["covered"]),
        ),
    )
