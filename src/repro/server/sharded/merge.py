"""Cross-shard coverage merging: one honest answer from N shards.

A multi-location query fans out one per-location sub-query to each
owning shard.  Each surviving shard answers with the same
:class:`~repro.server.degradation.DegradedResult` a single-process
server would produce for that location; a dead shard answers nothing.
This module folds those per-location outcomes into a single result
that never overstates coverage:

* every ``(location, period)`` the query requested is attributed
  either to a shard answer (covered or explicitly missing) or to a
  dead shard (entirely uncovered);
* the merged coverage fraction counts *cells*, not locations, so one
  dead shard out of four degrades the answer by exactly the share of
  cells it owned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.server.degradation import DegradedResult


@dataclass(frozen=True)
class LocationOutcome:
    """What one location's owning shard said about one sub-query.

    Attributes
    ----------
    location:
        The queried location.
    shard:
        The shard that owns it.
    result:
        The shard's answer, or None when the shard was unreachable or
        refused the sub-query (coverage floor, missing data).
    error:
        Human-readable reason when ``result`` is None.
    """

    location: int
    shard: int
    result: Optional[DegradedResult]
    error: str = ""

    @property
    def answered(self) -> bool:
        """True when the shard produced an estimate for this location."""
        return self.result is not None


@dataclass(frozen=True)
class ShardedQueryResult:
    """The merged answer to a multi-location persistent-traffic query.

    Attributes
    ----------
    outcomes:
        One :class:`LocationOutcome` per requested location, in
        request order.
    requested_periods:
        The periods the query asked for (same for every location).
    explain:
        Optional timing/attribution breakdown (populated when the
        query was issued with ``explain=True``): total and per-shard
        wall/engine/wire latency, cache hit/miss deltas, coverage
        contribution per shard, and deadline budget consumed.  JSON-
        safe, carried verbatim across the wire.
    """

    outcomes: Tuple[LocationOutcome, ...]
    requested_periods: Tuple[int, ...]
    explain: Optional[dict] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))
        object.__setattr__(
            self, "requested_periods", tuple(self.requested_periods)
        )

    def outcome_for(self, location: int) -> LocationOutcome:
        """The outcome of one requested location."""
        for outcome in self.outcomes:
            if outcome.location == int(location):
                return outcome
        raise KeyError(f"location {location} was not part of this query")

    @property
    def uncovered(self) -> Tuple[Tuple[int, int], ...]:
        """Exact ``(location, period)`` cells the answer did not see.

        A dead or refusing shard contributes every requested period of
        each of its locations; an answering shard contributes exactly
        its result's missing periods.  Ordered by request order of
        locations, then periods.
        """
        cells = []
        for outcome in self.outcomes:
            if outcome.result is None:
                cells.extend(
                    (outcome.location, period)
                    for period in self.requested_periods
                )
            else:
                cells.extend(
                    (outcome.location, period)
                    for period in outcome.result.coverage.missing
                )
        return tuple(cells)

    @property
    def covered_cells(self) -> int:
        """Requested ``(location, period)`` cells an estimate saw."""
        return self.requested_cells - len(self.uncovered)

    @property
    def requested_cells(self) -> int:
        """Total requested ``(location, period)`` cells."""
        return len(self.outcomes) * len(self.requested_periods)

    @property
    def coverage_fraction(self) -> float:
        """Covered share of requested cells, in [0, 1]."""
        if not self.requested_cells:
            return 1.0
        return self.covered_cells / self.requested_cells

    @property
    def degraded(self) -> bool:
        """True when any requested cell went unanswered."""
        return bool(self.uncovered)

    @property
    def dead_locations(self) -> Tuple[int, ...]:
        """Locations whose shard produced no estimate at all."""
        return tuple(
            outcome.location
            for outcome in self.outcomes
            if outcome.result is None
        )
