"""Distributed tracing: causal span trees across the upload/query path.

PR 1's spans are flat wall-clock timers — they record *how long*
something took, but not *which* upload produced the record a degraded
query later missed.  This module adds the causal layer:

* a :class:`TraceContext` is a ``(trace_id, span_id)`` pair.  The
  innermost active context lives in a :mod:`contextvars` context
  variable, so nested spans form parent→child chains without any
  explicit plumbing (and correctly per thread);
* :class:`SpanRecord` is one *closed* span with its identifiers,
  timing, attributes and cross-trace links;
* :class:`TraceBuffer` is a bounded ring of recent traces plus the
  *record-binding* table: ``(location, period) → upload context``.
  The binding is what lets a query span link back to the transport
  span that delivered (or dead-lettered) the record it touched — the
  only causal signal left once per-vehicle identifiers are gone;
* :func:`format_trace_tree` renders one trace as a human tree with
  the critical path marked and linked upload subtrees inlined.

Trace contexts travel *through* the system boundaries:

* :mod:`repro.faults.transport` embeds the sending span's context in
  its framed uploads (``RFR2`` frames), so a delayed frame delivered
  periods later still joins its original upload trace;
* :class:`~repro.faults.transport.DeadLetterLog` entries carry the
  quarantined upload's trace id;
* :class:`~repro.server.cache.JoinCache` remembers the context that
  built each memoized join and links cache-served queries back to it.

Identifiers are 16-hex-char trace ids (random per-process prefix + a
process-local sequence) and 8-hex-char span ids.  They never influence
library randomness — estimator outputs stay byte-identical whether or
not tracing is active.
"""

from __future__ import annotations

import itertools
import os
import re
import threading
from collections import OrderedDict
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Hex characters in a trace id / span id.
TRACE_ID_HEX = 16
SPAN_ID_HEX = 8

#: Wire size of a serialized context (ASCII hex, fixed width).
CONTEXT_BYTES = TRACE_ID_HEX + SPAN_ID_HEX

#: Default ring bound: completed traces kept for /traces and reports.
DEFAULT_MAX_TRACES = 256

#: Whole-context wire pattern; one C-level match replaces a per-char
#: membership scan on the ingest hot path.
_CONTEXT_WIRE = re.compile(
    (b"[0-9a-f]{%d}" % CONTEXT_BYTES)
)


@dataclass(frozen=True)
class TraceContext:
    """One point in a trace: the trace and the span that is active."""

    trace_id: str
    span_id: str

    def to_bytes(self) -> bytes:
        """Fixed-width ASCII serialization (RFR2 frame header field)."""
        return (self.trace_id + self.span_id).encode("ascii")

    @classmethod
    def from_bytes(cls, raw: bytes) -> Optional["TraceContext"]:
        """Parse a serialized context; None when corrupted.

        In-flight corruption can hit the context field of a frame; a
        garbled context must degrade to "no context", never raise —
        the payload checksum, not the trace header, decides delivery.
        """
        if len(raw) != CONTEXT_BYTES:
            return None
        if _CONTEXT_WIRE.fullmatch(raw) is None:
            return None
        text = raw.decode("ascii")
        return cls(trace_id=text[:TRACE_ID_HEX], span_id=text[TRACE_ID_HEX:])


#: The innermost active context (contextvars: per-thread and per-task).
_current: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "repro_trace_context", default=None
)

#: Random per-process prefix keeps ids from colliding across processes.
_PROCESS_PREFIX = os.urandom(4).hex()

#: Process-local sequences (``next()`` on ``count`` is atomic in CPython).
_trace_sequence = itertools.count(1)
_span_sequence = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex trace id, unique across processes and time."""
    return _PROCESS_PREFIX + format(next(_trace_sequence) & 0xFFFFFFFF, "08x")


def new_span_id() -> str:
    """A fresh 8-hex span id, unique within this process."""
    return format(next(_span_sequence) & 0xFFFFFFFF, "08x")


def current() -> Optional[TraceContext]:
    """The innermost active trace context, or None."""
    return _current.get()


def activate(context: Optional[TraceContext]):
    """Make ``context`` current; returns a token for :func:`restore`."""
    return _current.set(context)


def restore(token) -> None:
    """Undo a matching :func:`activate`."""
    _current.reset(token)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span, as stored in a :class:`TraceBuffer`."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    links: Tuple[TraceContext, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (the /traces endpoint and --trace-out)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": self.start,
            "duration_seconds": self.duration,
            "attrs": {key: str(value) for key, value in self.attrs.items()},
            "error": self.error,
            "links": [
                {"trace_id": link.trace_id, "span_id": link.span_id}
                for link in self.links
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Optional["SpanRecord"]:
        """Inverse of :meth:`to_dict`; None when structurally damaged.

        The cross-process telemetry path (shard workers shipping their
        closed spans to the front door) carries spans as JSON, and a
        garbled payload must degrade to "span lost" — counted, never
        raised — exactly like a corrupted trace context on an upload
        frame.  Attribute values come back as strings (``to_dict``
        stringifies them), which is all the renderers need.
        """
        if not isinstance(payload, dict):
            return None
        try:
            trace_id = str(payload["trace_id"])
            span_id = str(payload["span_id"])
            name = str(payload["name"])
            start = float(payload["ts"])
            duration = float(payload["duration_seconds"])
        except (KeyError, TypeError, ValueError):
            return None
        parent = payload.get("parent_id")
        attrs = payload.get("attrs") or {}
        if not isinstance(attrs, dict):
            return None
        links = []
        for link in payload.get("links") or ():
            try:
                links.append(
                    TraceContext(
                        trace_id=str(link["trace_id"]),
                        span_id=str(link["span_id"]),
                    )
                )
            except (KeyError, TypeError):
                # A garbled link loses the cross-reference, not the
                # span: ids and timing are still worth absorbing.
                continue
        error = payload.get("error")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=str(parent) if parent is not None else None,
            name=name,
            start=start,
            duration=duration,
            attrs={str(key): str(value) for key, value in attrs.items()},
            error=str(error) if error is not None else None,
            links=tuple(links),
        )


@dataclass(frozen=True)
class RecordBinding:
    """Which upload trace produced (or lost) one ``(location, period)``."""

    context: TraceContext
    kind: str  # "record" (stored) or "dead_letter" (quarantined)


class TraceBuffer:
    """Bounded ring of recent traces plus the record-binding table.

    Thread-safe.  Completed spans are appended by
    :class:`~repro.obs.spans.Span` on exit; the oldest whole *trace*
    is evicted once ``max_traces`` distinct trace ids are resident.
    Evicting a trace also drops the record bindings and reverse links
    that point into it, so the buffer never serves dangling ids.
    """

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES):
        if int(max_traces) < 1:
            raise ObservabilityError(
                f"trace buffer needs max_traces >= 1, got {max_traces}"
            )
        self._max_traces = int(max_traces)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()
        self._bindings: Dict[Tuple[int, int], List[RecordBinding]] = {}
        self._linked_from: Dict[str, List[Tuple[str, TraceContext]]] = {}
        #: Reverse index trace -> bound cells, so evicting a trace
        #: prunes only its own bindings instead of sweeping the whole
        #: binding table (which grows with distinct cells and made
        #: eviction cost climb over a long-lived worker's life).
        self._cells_by_trace: Dict[str, set] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, record: SpanRecord) -> None:
        """Store one closed span (called by the span layer on exit)."""
        with self._lock:
            spans = self._traces.get(record.trace_id)
            if spans is None:
                spans = []
                self._traces[record.trace_id] = spans
            else:
                self._traces.move_to_end(record.trace_id)
            spans.append(record)
            if record.links:
                source = TraceContext(record.trace_id, record.span_id)
                for link in record.links:
                    self._linked_from.setdefault(link.trace_id, []).append(
                        (record.name, source)
                    )
            while len(self._traces) > self._max_traces:
                evicted, _ = self._traces.popitem(last=False)
                self._drop_references(evicted)

    def _drop_references(self, trace_id: str) -> None:
        """Forget bindings and reverse links into an evicted trace.

        O(cells bound by this trace), not O(all cells): the reverse
        index names exactly the keys that can hold a dangling binding.
        """
        self._linked_from.pop(trace_id, None)
        for key in self._cells_by_trace.pop(trace_id, ()):
            bindings = self._bindings.get(key)
            if bindings is None:
                continue
            survivors = [
                b for b in bindings if b.context.trace_id != trace_id
            ]
            if survivors:
                self._bindings[key] = survivors
            else:
                del self._bindings[key]

    def bind(
        self,
        location: int,
        period: int,
        context: TraceContext,
        kind: str = "record",
    ) -> None:
        """Remember which trace delivered (or dead-lettered) a record."""
        binding = RecordBinding(context=context, kind=kind)
        key = (int(location), int(period))
        with self._lock:
            self._bindings.setdefault(key, []).append(binding)
            self._cells_by_trace.setdefault(context.trace_id, set()).add(key)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of resident traces."""
        with self._lock:
            return len(self._traces)

    def trace_ids(self) -> List[str]:
        """Resident trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def latest_trace_id(self) -> Optional[str]:
        """The most recently touched trace id, or None when empty."""
        with self._lock:
            return next(reversed(self._traces)) if self._traces else None

    def spans(self, trace_id: str) -> List[SpanRecord]:
        """The recorded spans of one trace (empty when unknown)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def find_span(self, context: TraceContext) -> Optional[SpanRecord]:
        """Resolve a context to its recorded span, if still resident."""
        with self._lock:
            for record in self._traces.get(context.trace_id, ()):
                if record.span_id == context.span_id:
                    return record
        return None

    def bindings(self, location: int, period: int) -> List[RecordBinding]:
        """Every upload binding for one ``(location, period)`` cell."""
        with self._lock:
            return list(self._bindings.get((int(location), int(period)), ()))

    def linked_from(self, trace_id: str) -> List[Tuple[str, TraceContext]]:
        """Spans in *other* traces that linked into this trace."""
        with self._lock:
            return list(self._linked_from.get(trace_id, ()))

    def to_payloads(self, limit: Optional[int] = None) -> List[dict]:
        """JSON-ready recent traces, newest first (the /traces body)."""
        with self._lock:
            ids = list(reversed(self._traces))
            if limit is not None:
                ids = ids[: max(int(limit), 0)]
            payloads = []
            for trace_id in ids:
                spans = self._traces[trace_id]
                payloads.append(
                    {
                        "trace_id": trace_id,
                        "span_count": len(spans),
                        "spans": [record.to_dict() for record in spans],
                        "touched_by": [
                            {
                                "name": name,
                                "trace_id": source.trace_id,
                                "span_id": source.span_id,
                            }
                            for name, source in self._linked_from.get(
                                trace_id, ()
                            )
                        ],
                    }
                )
            return payloads


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _children_by_parent(
    spans: Sequence[SpanRecord],
) -> Dict[Optional[str], List[SpanRecord]]:
    ids = {record.span_id for record in spans}
    children: Dict[Optional[str], List[SpanRecord]] = {}
    for record in spans:
        parent = record.parent_id if record.parent_id in ids else None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: (record.start, record.span_id))
    return children


def _critical_path(
    roots: Sequence[SpanRecord],
    children: Dict[Optional[str], List[SpanRecord]],
) -> set:
    """Span ids on the critical path: longest child chain from the root."""
    marked = set()
    if not roots:
        return marked
    node = max(roots, key=lambda record: record.duration)
    while node is not None:
        marked.add(node.span_id)
        below = children.get(node.span_id, [])
        node = max(below, key=lambda record: record.duration) if below else None
    return marked


def _span_line(record: SpanRecord, critical: set) -> str:
    text = f"{record.name} ({_fmt_seconds(record.duration)})"
    if record.span_id in critical:
        text += " *"
    if record.attrs:
        text += "  " + " ".join(
            f"{key}={value}" for key, value in record.attrs.items()
        )
    if record.error:
        text += f"  !{record.error}"
    return text


def _render_subtree(
    record: SpanRecord,
    children: Dict[Optional[str], List[SpanRecord]],
    critical: set,
    prefix: str,
    is_last: bool,
    lines: List[str],
    resolve_link=None,
    depth: int = 0,
    max_depth: int = 12,
) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(prefix + connector + _span_line(record, critical))
    child_prefix = prefix + ("   " if is_last else "│  ")
    if resolve_link is not None:
        for link in record.links:
            lines.extend(resolve_link(link, child_prefix))
    if depth >= max_depth:
        return
    below = children.get(record.span_id, [])
    for index, child in enumerate(below):
        _render_subtree(
            child,
            children,
            critical,
            child_prefix,
            index == len(below) - 1,
            lines,
            resolve_link=resolve_link,
            depth=depth + 1,
            max_depth=max_depth,
        )


def format_trace_tree(
    buffer: TraceBuffer, trace_id: Optional[str] = None
) -> str:
    """Render one trace as a tree with links and the critical path.

    Without ``trace_id`` the most recent trace is shown.  Spans on the
    critical path (the chain of longest-duration children from the
    root) are marked with ``*``.  A span's cross-trace links (a query
    touching records delivered by earlier upload traces, a cache hit
    reusing a join built elsewhere) are inlined as ``→ link:`` nodes
    showing the linked span's own subtree — this is where a degraded
    query's missing record meets the transport retry or dead-letter
    span that explains it.  Spans in other traces that linked *into*
    this one are listed at the bottom.
    """
    resolved = trace_id if trace_id is not None else buffer.latest_trace_id()
    if resolved is None:
        return "no traces recorded"
    spans = buffer.spans(resolved)
    if not spans:
        return f"trace {resolved}: no spans recorded"
    children = _children_by_parent(spans)
    roots = children.get(None, [])
    critical = _critical_path(roots, children)
    total = sum(record.duration for record in roots)
    lines = [
        f"trace {resolved} — {len(spans)} span(s), {_fmt_seconds(total)}"
    ]

    def resolve_link(link: TraceContext, prefix: str) -> List[str]:
        linked = buffer.find_span(link)
        if linked is None:
            return [
                prefix
                + f"→ link: trace {link.trace_id} span {link.span_id}"
                + " (evicted)"
            ]
        out = [prefix + f"→ link: trace {link.trace_id}"]
        linked_spans = buffer.spans(link.trace_id)
        linked_children = _children_by_parent(linked_spans)
        _render_subtree(
            linked,
            linked_children,
            set(),
            prefix + "  ",
            True,
            out,
            resolve_link=None,
            max_depth=4,
        )
        return out

    for index, root in enumerate(roots):
        _render_subtree(
            root,
            children,
            critical,
            "",
            index == len(roots) - 1,
            lines,
            resolve_link=resolve_link,
        )
    touched = buffer.linked_from(resolved)
    if touched:
        lines.append("touched later by:")
        for name, source in touched:
            lines.append(
                f"  ↳ {name} (trace {source.trace_id} span {source.span_id})"
            )
    return "\n".join(lines)
