"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is deliberately dependency-free (no ``prometheus_client``)
and thread-safe: RSU uploads may arrive from many threads once the
server runs behind a real transport, and the simulation engine must be
free to parallelise periods later without revisiting this layer.

Metrics follow Prometheus conventions: a *family* is identified by a
metric name (``repro_records_ingested_total``), holds one child per
distinct label set, and has a fixed type.  Histograms use fixed
log-scale bucket boundaries (:func:`log_buckets`), so the exposition is
mergeable across processes.

All of this is *passive*: nothing in the library touches a registry
unless one was activated through :mod:`repro.obs.runtime`.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Valid Prometheus metric names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Valid Prometheus label names.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A child's key: the label set as a sorted tuple of (name, value).
LabelKey = Tuple[Tuple[str, str], ...]


def log_buckets(start: float, end: float, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-scale histogram boundaries from ``start`` to ``end``.

    Produces ``per_decade`` boundaries per factor of ten, e.g.
    ``log_buckets(0.001, 1.0, 3)`` gives 1ms, ~2.2ms, ~4.6ms, 10ms, ...
    Boundaries are rounded to 12 significant digits so the exposition
    text stays stable across platforms.
    """
    if start <= 0:
        raise ObservabilityError(f"bucket start must be positive, got {start}")
    if end <= start:
        raise ObservabilityError(f"bucket end {end} must exceed start {start}")
    if per_decade < 1:
        raise ObservabilityError(f"per_decade must be >= 1, got {per_decade}")
    lo = round(per_decade * math.log10(start))
    hi = round(per_decade * math.log10(end))
    return tuple(float(f"{10 ** (k / per_decade):.12g}") for k in range(lo, hi + 1))


#: Default latency buckets: 1 microsecond to 10 seconds, 3 per decade.
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 10.0, per_decade=3)

#: Buckets for power-of-two quantities (expansion factors, size ratios).
POW2_BUCKETS = tuple(float(2 ** k) for k in range(11))

#: Buckets for bit/byte-sized quantities: 2^6 .. 2^24.
SIZE_BUCKETS = tuple(float(2 ** k) for k in range(6, 25, 2))


def _label_key(labels: Dict[str, object]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Counter:
    """A monotonically increasing count (events, records, bits)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; cannot inc by {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (for between-run reuse, not for scraping)."""
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (resident records, bits)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge."""
        with self._lock:
            self._value = 0.0


class Histogram:
    """A distribution over fixed buckets (latencies, ratios, sizes).

    Buckets are *upper bounds*: an observation ``v`` lands in the first
    bucket with ``v <= upper``; anything beyond the last bound lands in
    the implicit ``+Inf`` overflow bucket.  Export is cumulative, as
    Prometheus expects.
    """

    __slots__ = ("_lock", "_uppers", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ObservabilityError("a histogram needs at least one bucket")
        if list(uppers) != sorted(set(uppers)):
            raise ObservabilityError(
                f"bucket bounds must be strictly increasing, got {uppers}"
            )
        self._lock = threading.Lock()
        self._uppers = uppers
        self._counts = [0] * (len(uppers) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    @property
    def buckets(self) -> Tuple[float, ...]:
        """The finite upper bounds (``+Inf`` is implicit)."""
        return self._uppers

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._uppers, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for upper, count in zip(self._uppers, counts):
            running += count
            pairs.append((upper, running))
        pairs.append((math.inf, running + counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from bucket bounds.

        Returns the upper bound of the bucket containing the quantile
        (the last finite bound for overflow observations, NaN when
        empty) — coarse, but honest about the histogram's resolution.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return math.nan
        target = q * total
        running = 0
        for upper, count in zip(self._uppers, counts):
            running += count
            if running >= target:
                return upper
        return self._uppers[-1]

    def reset(self) -> None:
        """Forget all observations."""
        with self._lock:
            self._counts = [0] * (len(self._uppers) + 1)
            self._sum = 0.0
            self._count = 0

    def merge_cumulative(
        self,
        buckets: Sequence[Sequence[object]],
        sum_: float,
        count: int,
    ) -> None:
        """Fold another histogram's snapshot into this one.

        ``buckets`` is the snapshot form: cumulative ``(le, count)``
        pairs with ``le`` either a float or the string ``"+Inf"``,
        ``+Inf`` last.  Both histograms must share the same finite
        bounds — the fixed log-scale bucket convention exists exactly
        so worker snapshots merge losslessly into the parent.
        """
        if len(buckets) != len(self._uppers) + 1:
            raise ObservabilityError(
                f"cannot merge histogram with {len(buckets)} buckets "
                f"into one with {len(self._uppers) + 1}"
            )
        uppers = []
        cumulative = []
        for le, cum in buckets:
            uppers.append(math.inf if le == "+Inf" else float(le))  # type: ignore[arg-type]
            cumulative.append(int(cum))  # type: ignore[call-overload]
        if tuple(uppers[:-1]) != self._uppers or not math.isinf(uppers[-1]):
            raise ObservabilityError(
                f"histogram bucket bounds differ: {tuple(uppers[:-1])} "
                f"vs {self._uppers}"
            )
        per_bucket = []
        previous = 0
        for cum in cumulative:
            if cum < previous:
                raise ObservabilityError(
                    f"cumulative bucket counts must be monotone, got {cumulative}"
                )
            per_bucket.append(cum - previous)
            previous = cum
        if cumulative[-1] != int(count):
            raise ObservabilityError(
                f"histogram count {count} disagrees with +Inf bucket "
                f"{cumulative[-1]}"
            )
        with self._lock:
            for index, increment in enumerate(per_bucket):
                self._counts[index] += increment
            self._sum += float(sum_)
            self._count += int(count)


class MetricFamily:
    """All children (label sets) of one named metric."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, object] = {}

    def labels(self, **labels: object):
        """The child for this label set, created on first use."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter()
                elif self.kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(self._buckets or DEFAULT_TIME_BUCKETS)
                self._children[key] = child
            return child

    def children(self) -> Iterator[Tuple[LabelKey, object]]:
        """Iterate ``(label_key, child)`` pairs, sorted by label key."""
        with self._lock:
            items = list(self._children.items())
        return iter(sorted(items, key=lambda item: item[0]))

    def reset(self) -> None:
        """Reset every child in the family."""
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()  # type: ignore[attr-defined]


class MetricsRegistry:
    """A thread-safe collection of metric families.

    The registry is the unit of enable/export: the CLI activates one
    per run and renders it through :mod:`repro.obs.export`; libraries
    reach the active one through :mod:`repro.obs.runtime`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help_text, buckets)
                    self._families[name] = family
        if family.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if help_text and not family.help_text:
            family.help_text = help_text
        return family

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter ``name`` for this label set (created on demand)."""
        return self._family(name, "counter", help).labels(**labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge ``name`` for this label set (created on demand)."""
        return self._family(name, "gauge", help).labels(**labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram ``name`` for this label set.

        ``buckets`` only takes effect when the family is first created;
        later calls reuse the family's bounds (they must be consistent
        for the exposition to merge).
        """
        return self._family(name, "histogram", help, buckets).labels(**labels)

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look up a family by name (None when absent)."""
        return self._families.get(name)

    def reset(self) -> None:
        """Reset every metric in place (families and labels survive)."""
        for family in self.families():
            family.reset()

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is the cross-process aggregation primitive: worker
        processes in ``experiments.parallel.map_cells`` snapshot their
        local registry and ship it back with each result chunk; the
        parent merges every snapshot here so ``--workers N`` runs
        report the same counters as serial runs.

        Counters and gauges add; histograms merge bucket-wise (their
        fixed log-scale bounds make this lossless).  Families and
        label sets absent from this registry are created.  Each call
        increments ``repro_registry_merges_total``.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            help_text = data.get("help", "")
            for child in data.get("children", ()):
                labels = child.get("labels", {})
                if kind == "counter":
                    self.counter(name, help_text, **labels).inc(child["value"])
                elif kind == "gauge":
                    # Gauges are levels, but across processes the only
                    # meaningful fold is additive (resident records in
                    # worker A + worker B = total resident records).
                    self.gauge(name, help_text, **labels).inc(child["value"])
                elif kind == "histogram":
                    buckets = child["buckets"]
                    finite = tuple(
                        float(le) for le, _ in buckets if le != "+Inf"
                    )
                    self.histogram(
                        name, help_text, buckets=finite or None, **labels
                    ).merge_cumulative(buckets, child["sum"], child["count"])
                else:
                    raise ObservabilityError(
                        f"cannot merge metric {name!r} of kind {kind!r}"
                    )
        self.counter(
            "repro_registry_merges_total",
            help="Cross-process registry snapshots merged into this one.",
        ).inc()

    def snapshot(self) -> Dict[str, dict]:
        """A plain-data view of every metric (drives the exporters)."""
        out: Dict[str, dict] = {}
        for family in self.families():
            children = []
            for key, child in family.children():
                labels = dict(key)
                if family.kind == "histogram":
                    children.append(
                        {
                            "labels": labels,
                            "sum": child.sum,  # type: ignore[attr-defined]
                            "count": child.count,  # type: ignore[attr-defined]
                            "buckets": [
                                ["+Inf" if math.isinf(le) else le, count]
                                for le, count in child.cumulative()  # type: ignore[attr-defined]
                            ],
                        }
                    )
                else:
                    children.append(
                        {"labels": labels, "value": child.value}  # type: ignore[attr-defined]
                    )
            out[family.name] = {
                "type": family.kind,
                "help": family.help_text,
                "children": children,
            }
        return out


class _NullMetric:
    """Absorbs every metric operation; shared by all disabled handles."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def set(self, value: float) -> None:  # noqa: D102
        pass

    def observe(self, value: float) -> None:  # noqa: D102
        pass

    def reset(self) -> None:  # noqa: D102
        pass


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry stand-in used while observability is disabled.

    Every lookup returns the shared :data:`NULL_METRIC`, so
    instrumentation can run unconditionally without allocating.
    """

    def counter(self, name: str, help: str = "", **labels: object) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels: object) -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> _NullMetric:
        return NULL_METRIC

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def reset(self) -> None:
        pass

    def merge(self, snapshot: Dict[str, dict]) -> None:
        pass

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_REGISTRY = NullRegistry()
