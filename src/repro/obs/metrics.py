"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is deliberately dependency-free (no ``prometheus_client``)
and thread-safe: RSU uploads may arrive from many threads once the
server runs behind a real transport, and the simulation engine must be
free to parallelise periods later without revisiting this layer.

Metrics follow Prometheus conventions: a *family* is identified by a
metric name (``repro_records_ingested_total``), holds one child per
distinct label set, and has a fixed type.  Histograms use fixed
log-scale bucket boundaries (:func:`log_buckets`), so the exposition is
mergeable across processes.

Hot-path cost model
-------------------
Updates are *sharded*: every metric keeps one private accumulation cell
per writing thread, so ``inc()``/``observe()`` never take a lock — the
GIL already serialises the single in-place add each update performs on
its own cell.  The exact totals are folded from the shards at
scrape/snapshot time (the cold path), which is what keeps
metrics-enabled ingest within a few percent of disabled ingest (see
``BENCH_obs.json``).  A thread's cell survives the thread, so totals
are exact even after workers exit.  Histograms can additionally
*sample* bucket attribution (``sample_rate=N`` buckets every Nth
observation, batch-weighted) while ``count``/``sum`` stay exact — see
:class:`Histogram`.

All of this is *passive*: nothing in the library touches a registry
unless one was activated through :mod:`repro.obs.runtime`.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Valid Prometheus metric names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Valid Prometheus label names.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A child's key: the label set as a sorted tuple of (name, value).
LabelKey = Tuple[Tuple[str, str], ...]


def log_buckets(start: float, end: float, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-scale histogram boundaries from ``start`` to ``end``.

    Produces ``per_decade`` boundaries per factor of ten, e.g.
    ``log_buckets(0.001, 1.0, 3)`` gives 1ms, ~2.2ms, ~4.6ms, 10ms, ...
    Boundaries are rounded to 12 significant digits so the exposition
    text stays stable across platforms.
    """
    if start <= 0:
        raise ObservabilityError(f"bucket start must be positive, got {start}")
    if end <= start:
        raise ObservabilityError(f"bucket end {end} must exceed start {start}")
    if per_decade < 1:
        raise ObservabilityError(f"per_decade must be >= 1, got {per_decade}")
    lo = round(per_decade * math.log10(start))
    hi = round(per_decade * math.log10(end))
    return tuple(float(f"{10 ** (k / per_decade):.12g}") for k in range(lo, hi + 1))


#: Default latency buckets: 1 microsecond to 10 seconds, 3 per decade.
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 10.0, per_decade=3)

#: Buckets for power-of-two quantities (expansion factors, size ratios).
POW2_BUCKETS = tuple(float(2 ** k) for k in range(11))

#: Buckets for bit/byte-sized quantities: 2^6 .. 2^24.
SIZE_BUCKETS = tuple(float(2 ** k) for k in range(6, 25, 2))

#: Counts shard folds performed at exposition time (telemetry about
#: telemetry; incremented by :meth:`MetricsRegistry.account_exposition`).
SHARD_FOLD_COUNTER = "repro_metric_shard_folds_total"

#: Counts histogram observations that rode along in sampled batches.
SAMPLES_DROPPED_COUNTER = "repro_histogram_samples_dropped_total"


def _label_key(labels: Dict[str, object]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Cell:
    """One thread's private accumulation slot for a scalar metric.

    Only the owning thread ever writes ``value`` (a single in-place
    float add, atomic under the GIL); folds read it.  The cell outlives
    its thread so the accumulated amount is never lost.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _Sharded:
    """Per-thread cell bookkeeping shared by :class:`Counter`/:class:`Gauge`."""

    __slots__ = ("_lock", "_base", "_cells", "_local", "_banks", "_hist_counts")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Folded-in amount from merges/sets (never written by shards).
        self._base = 0.0
        self._cells: List[_Cell] = []
        self._local = threading.local()
        #: ``(bank, attr)`` columns feeding this metric (see
        #: :class:`CounterBank`); folded in with the cells.
        self._banks: List[Tuple["CounterBank", str]] = []
        #: Histograms whose exact observation count feeds this metric
        #: (see :meth:`_attach_histogram_count`); folded like banks.
        self._hist_counts: List["Histogram"] = []

    def _new_cell(self) -> _Cell:
        cell = _Cell()
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    def _attach_bank(self, bank: "CounterBank", attr: str) -> None:
        with self._lock:
            self._banks.append((bank, attr))

    def _attach_histogram_count(self, histogram: "Histogram") -> None:
        """Derive this metric from ``histogram``'s observation count.

        A counter that is an *identity* of a histogram's count (every
        served query observes exactly one latency) costs the hot path
        nothing: the count is folded in here at scrape time, and
        sampled histograms keep their count exact by construction.
        Idempotent per histogram, so re-binding on an observability
        toggle never double-attaches.  A derived metric is skipped by
        :meth:`MetricsRegistry.merge` — its cross-process total arrives
        through the source histogram's own bucket merge.
        """
        with self._lock:
            if not any(h is histogram for h in self._hist_counts):
                self._hist_counts.append(histogram)

    @property
    def derived(self) -> bool:
        """Whether this metric aliases a histogram count (see above)."""
        return bool(self._hist_counts)

    @property
    def value(self) -> float:
        """The exact current total, folded across all thread shards."""
        with self._lock:
            total = self._base + sum(cell.value for cell in self._cells)
            for bank, attr in self._banks:
                total += bank._column(attr)
            for histogram in self._hist_counts:
                total += histogram.count
            return total

    @property
    def shards(self) -> int:
        """Number of per-thread cells folded at scrape time."""
        with self._lock:
            return len(self._cells)

    def reset(self) -> None:
        """Zero the metric (for between-run reuse, not while writing)."""
        with self._lock:
            self._base = 0.0
            for cell in self._cells:
                cell.value = 0.0
            for bank, attr in self._banks:
                bank._reset_column(attr)


class Counter(_Sharded):
    """A monotonically increasing count (events, records, bits).

    ``inc()`` is lock-free: it adds into the calling thread's private
    cell.  ``value`` folds every cell (plus merged-in base) into the
    exact total — strictly monotone across scrapes, exact once writers
    quiesce.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; cannot inc by {amount}"
            )
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        cell.value += amount


class Gauge(_Sharded):
    """A value that can go up and down (resident records, bits).

    ``inc()``/``dec()`` are lock-free per-thread deltas; ``set()`` is
    an absolute assignment and therefore takes the fold lock (it zeroes
    every shard).  Concurrent ``set`` and ``inc`` race exactly as the
    operations' semantics suggest: the delta lands before or after the
    assignment, never partially.
    """

    __slots__ = ()

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._base = float(value)
            for cell in self._cells:
                cell.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        cell.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)


class CounterBank:
    """Several counter/gauge children updated through one shared cell.

    A hot path that bumps several series per event (server ingest
    touches five) would otherwise pay one guarded method call per
    series.  A bank fuses them: the site fetches *one* per-thread cell
    and performs plain attribute adds::

        cell = _INGEST.cell()
        cell.ingested += 1
        cell.resident_bits += record.size

    Each named field is wired to exactly one child metric, whose folds
    include the bank cells' column, so totals stay exact and the
    exposition is indistinguishable from per-series updates.  Only
    counters and delta-style gauges can join a bank; a banked gauge's
    ``set()`` zeroes its column like any other shard.

    Several children may *alias* one column: ``fields`` is a sequence
    of ``(attr, child)`` pairs and a repeated ``attr`` attaches every
    listed child to the same cell slot.  This is for families whose
    values are identities of each other on the hot path (the server's
    resident-record gauge tracks its ingest counter exactly while
    nothing evicts) — the site pays one add and every aliased family
    folds the same column.  Aliased children must stay delta-style:
    a ``set()`` on any of them zeroes the shared column for all.

    Writes follow the cell model of :class:`_Cell`: only the owning
    thread writes its cell's attributes (GIL-atomic in-place adds),
    folds read them, and cells outlive their threads.
    """

    __slots__ = ("_columns", "_cell_type", "_cells", "_local", "_lock")

    def __init__(self, fields):
        items = list(fields.items()) if isinstance(fields, dict) else list(fields)
        if not items:
            raise ObservabilityError("a counter bank needs at least one field")
        columns: List[str] = []
        for attr, _child in items:
            if attr not in columns:
                columns.append(attr)
        self._columns = tuple(columns)
        self._cell_type = type(
            "_BankCell", (object,), {"__slots__": self._columns}
        )
        self._cells: List[object] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        for attr, child in items:
            child._attach_bank(self, attr)

    def cell(self):
        """This thread's cell; fields are plain attributes to add to."""
        try:
            return self._local.cell
        except AttributeError:
            return self._new_cell()

    def _new_cell(self):
        cell = self._cell_type()
        for attr in self._columns:
            setattr(cell, attr, 0.0)
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    def _column(self, attr: str) -> float:
        with self._lock:
            cells = list(self._cells)
        return float(sum(getattr(cell, attr) for cell in cells))

    def _reset_column(self, attr: str) -> None:
        with self._lock:
            for cell in self._cells:
                setattr(cell, attr, 0.0)


class _HistogramCell:
    """One thread's private histogram shard.

    ``sum`` is exact (updated on every observation).  ``counts`` holds
    *bucketed* observations; with sampling active, up to
    ``sample_rate - 1`` recent observations sit in ``pending`` awaiting
    batch attribution to the next sampled observation's bucket.
    ``last_index`` remembers the most recent sampled bucket so a fold
    can place a still-pending tail; ``dropped`` counts observations
    that rode along in a completed batch instead of being individually
    bucketed.
    """

    __slots__ = ("counts", "sum", "pending", "last_index", "dropped")

    def __init__(self, buckets: int) -> None:
        self.counts = [0] * buckets
        self.sum = 0.0
        self.pending = 0
        self.last_index = -1
        self.dropped = 0


class Histogram:
    """A distribution over fixed buckets (latencies, ratios, sizes).

    Buckets are *upper bounds*: an observation ``v`` lands in the first
    bucket with ``v <= upper``; anything beyond the last bound lands in
    the implicit ``+Inf`` overflow bucket.  Export is cumulative, as
    Prometheus expects.

    ``observe()`` is lock-free: each writing thread accumulates into a
    private shard that folds are summed from at scrape time.  With
    ``sample_rate=N > 1`` only every Nth observation per thread pays
    the bucket search; it carries the batch's full weight (its own
    observation plus the ``N-1`` pending ones) into its bucket, so the
    total bucket mass — and therefore ``count`` and the ``+Inf``
    cumulative bucket — stays exact while the *distribution across
    buckets* becomes an unbiased-for-stationary-streams approximation.
    ``sum`` is always exact.  A fold attributes a thread's still-
    pending tail (< N observations) to its most recent sampled bucket
    (or, before any sample landed, to the bucket of the running mean),
    so the exposed ``_count`` equals the true observation count at
    every scrape.
    """

    __slots__ = ("_lock", "_uppers", "_rate", "_base_counts", "_base_sum",
                 "_cells", "_local")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        sample_rate: int = 1,
    ):
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ObservabilityError("a histogram needs at least one bucket")
        if list(uppers) != sorted(set(uppers)):
            raise ObservabilityError(
                f"bucket bounds must be strictly increasing, got {uppers}"
            )
        if int(sample_rate) < 1:
            raise ObservabilityError(
                f"sample_rate must be >= 1, got {sample_rate}"
            )
        self._lock = threading.Lock()
        self._uppers = uppers
        self._rate = int(sample_rate)
        self._base_counts = [0] * (len(uppers) + 1)  # +1 for +Inf
        self._base_sum = 0.0
        self._cells: List[_HistogramCell] = []
        self._local = threading.local()

    @property
    def buckets(self) -> Tuple[float, ...]:
        """The finite upper bounds (``+Inf`` is implicit)."""
        return self._uppers

    @property
    def sample_rate(self) -> int:
        """Bucket every Nth observation per thread (1 = bucket all)."""
        return self._rate

    def _new_cell(self) -> _HistogramCell:
        cell = _HistogramCell(len(self._uppers) + 1)
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    def observe(self, value: float) -> None:
        """Record one observation (lock-free; see class docstring)."""
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        cell.sum += value
        pending = cell.pending + 1
        if pending >= self._rate:
            index = bisect_left(self._uppers, value)
            cell.counts[index] += pending
            cell.last_index = index
            cell.dropped += pending - 1
            cell.pending = 0
        else:
            cell.pending = pending

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in one call.

        Unsampled, this is exactly equivalent to ``count`` consecutive
        ``observe(value)`` calls — same bucket, count and sum — at the
        cost of one.  Hot sites that expand a whole group at one ratio
        (a join folding k same-sized bitmaps) use it to pay the
        per-observation overhead once per group.  Under sampling the
        group counts as a single sampled observation carrying any
        previously-pending tail with it (only that carried tail counts
        as dropped; the group itself is bucketed exactly).
        """
        if count <= 0:
            return
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        cell.sum += value * count
        pending = cell.pending + count
        if pending >= self._rate:
            index = bisect_left(self._uppers, value)
            cell.counts[index] += pending
            cell.last_index = index
            cell.dropped += pending - count
            cell.pending = 0
        else:
            cell.pending = pending

    def _folded(self) -> Tuple[List[int], float]:
        """Exact ``(per_bucket_counts, sum)`` across base and shards.

        Reads shards without mutating them: a thread's pending tail is
        attributed in the returned view only, so the owner keeps its
        own bookkeeping and no fold ever races a writer's state.
        """
        with self._lock:
            counts = list(self._base_counts)
            total_sum = self._base_sum
            cells = list(self._cells)
        for cell in cells:
            cell_counts = list(cell.counts)
            pending = cell.pending
            cell_sum = cell.sum
            for index, cell_count in enumerate(cell_counts):
                counts[index] += cell_count
            if pending:
                index = cell.last_index
                if index < 0:
                    # Nothing sampled yet: place the tail at the bucket
                    # of the shard's running mean.
                    observed = sum(cell_counts) + pending
                    index = bisect_left(self._uppers, cell_sum / observed)
                counts[index] += pending
            total_sum += cell_sum
        return counts, total_sum

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._folded()[1]

    @property
    def count(self) -> int:
        """Exact number of observations."""
        return sum(self._folded()[0])

    @property
    def samples_dropped(self) -> int:
        """Observations that rode along in a sampled batch.

        Each completed batch of ``sample_rate`` observations buckets
        one observation individually and carries the other
        ``sample_rate - 1`` along — those ride-alongs are counted
        here.  Always 0 when ``sample_rate`` is 1.
        """
        with self._lock:
            return sum(cell.dropped for cell in self._cells)

    @property
    def shards(self) -> int:
        """Number of per-thread cells folded at scrape time."""
        with self._lock:
            return len(self._cells)

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        return self._folded()[0]

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        return self.exposition()[0]

    def exposition(self) -> Tuple[List[Tuple[float, int]], float, int]:
        """Single-fold consistent ``(cumulative_pairs, sum, count)``.

        ``cumulative()``, ``sum`` and ``count`` each fold the shards
        independently, so a reader combining them while writers run
        can pair a stale ``+Inf`` bucket with a newer count — an
        exposition consumers (including :meth:`merge_cumulative`)
        rightly reject.  Exporters and snapshots read all three
        quantities out of one fold here instead, so a scrape is
        internally consistent no matter how it races the writers.
        """
        counts, total_sum = self._folded()
        pairs: List[Tuple[float, int]] = []
        running = 0
        for upper, count in zip(self._uppers, counts):
            running += count
            pairs.append((upper, running))
        total = running + counts[-1]
        pairs.append((math.inf, total))
        return pairs, total_sum, total

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from bucket bounds.

        Returns the upper bound of the bucket containing the quantile
        (the last finite bound for overflow observations, NaN when
        empty) — coarse, but honest about the histogram's resolution.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must lie in [0, 1], got {q}")
        counts, _ = self._folded()
        total = sum(counts)
        if total == 0:
            return math.nan
        target = q * total
        running = 0
        for upper, count in zip(self._uppers, counts):
            running += count
            if running >= target:
                return upper
        return self._uppers[-1]

    def reset(self) -> None:
        """Forget all observations."""
        with self._lock:
            self._base_counts = [0] * (len(self._uppers) + 1)
            self._base_sum = 0.0
            for cell in self._cells:
                cell.counts = [0] * (len(self._uppers) + 1)
                cell.sum = 0.0
                cell.pending = 0
                cell.last_index = -1
                cell.dropped = 0

    def merge_cumulative(
        self,
        buckets: Sequence[Sequence[object]],
        sum_: float,
        count: int,
    ) -> None:
        """Fold another histogram's snapshot into this one.

        ``buckets`` is the snapshot form: cumulative ``(le, count)``
        pairs with ``le`` either a float or the string ``"+Inf"``,
        ``+Inf`` last.  Both histograms must share the same finite
        bounds — the fixed log-scale bucket convention exists exactly
        so worker snapshots merge losslessly into the parent.
        """
        if len(buckets) != len(self._uppers) + 1:
            raise ObservabilityError(
                f"cannot merge histogram with {len(buckets)} buckets "
                f"into one with {len(self._uppers) + 1}"
            )
        uppers = []
        cumulative = []
        for le, cum in buckets:
            uppers.append(math.inf if le == "+Inf" else float(le))  # type: ignore[arg-type]
            cumulative.append(int(cum))  # type: ignore[call-overload]
        if tuple(uppers[:-1]) != self._uppers or not math.isinf(uppers[-1]):
            raise ObservabilityError(
                f"histogram bucket bounds differ: {tuple(uppers[:-1])} "
                f"vs {self._uppers}"
            )
        per_bucket = []
        previous = 0
        for cum in cumulative:
            if cum < previous:
                raise ObservabilityError(
                    f"cumulative bucket counts must be monotone, got {cumulative}"
                )
            per_bucket.append(cum - previous)
            previous = cum
        if cumulative[-1] != int(count):
            raise ObservabilityError(
                f"histogram count {count} disagrees with +Inf bucket "
                f"{cumulative[-1]}"
            )
        with self._lock:
            for index, increment in enumerate(per_bucket):
                self._base_counts[index] += increment
            self._base_sum += float(sum_)


class MetricFamily:
    """All children (label sets) of one named metric."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: int = 1,
    ):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self._buckets = tuple(buckets) if buckets is not None else None
        self._sample_rate = int(sample_rate)
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, object] = {}

    def labels(self, **labels: object):
        """The child for this label set, created on first use."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter()
                elif self.kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(
                        self._buckets or DEFAULT_TIME_BUCKETS,
                        sample_rate=self._sample_rate,
                    )
                self._children[key] = child
            return child

    def children(self) -> Iterator[Tuple[LabelKey, object]]:
        """Iterate ``(label_key, child)`` pairs, sorted by label key."""
        with self._lock:
            items = list(self._children.items())
        return iter(sorted(items, key=lambda item: item[0]))

    def reset(self) -> None:
        """Reset every child in the family."""
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()  # type: ignore[attr-defined]


class MetricsRegistry:
    """A thread-safe collection of metric families.

    The registry is the unit of enable/export: the CLI activates one
    per run and renders it through :mod:`repro.obs.export`; libraries
    reach the active one through :mod:`repro.obs.runtime`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._banks: Dict[str, CounterBank] = {}
        #: Dropped-sample total already shipped to the exposition
        #: counter; see :meth:`account_exposition`.
        self._dropped_reported = 0

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
        sample_rate: int = 1,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, kind, help_text, buckets, sample_rate
                    )
                    self._families[name] = family
        if family.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if help_text and not family.help_text:
            family.help_text = help_text
        return family

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter ``name`` for this label set (created on demand)."""
        return self._family(name, "counter", help).labels(**labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge ``name`` for this label set (created on demand)."""
        return self._family(name, "gauge", help).labels(**labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: Optional[int] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram ``name`` for this label set.

        ``buckets`` and ``sample_rate`` only take effect when the
        family is first created; later calls reuse the family's bounds
        and rate (they must be consistent for the exposition to merge).
        """
        return self._family(
            name, "histogram", help, buckets, sample_rate or 1
        ).labels(**labels)

    def bind(
        self,
        kind: str,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: Optional[int] = None,
        labels: Optional[Dict[str, object]] = None,
    ):
        """Resolve a child once so callers can cache the handle.

        Returns the concrete :class:`Counter`/:class:`Gauge`/
        :class:`Histogram` child — name validation, label sorting, and
        family lookup happen here instead of on every update.  Labels
        ride in a dict (not kwargs) so label names like ``kind`` can't
        collide with the parameters.  Hot paths use this through the
        typed :func:`repro.obs.runtime.bind_counter` /
        ``bind_gauge`` / ``bind_histogram`` helpers, whose handles
        also re-resolve when observability is toggled.
        """
        labels = labels or {}
        if kind == "counter":
            return self.counter(name, help, **labels)
        if kind == "gauge":
            return self.gauge(name, help, **labels)
        if kind == "histogram":
            return self.histogram(
                name, help, buckets=buckets, sample_rate=sample_rate, **labels
            )
        raise ObservabilityError(f"unknown metric kind {kind!r}")

    def bank(
        self,
        name: str,
        fields: Dict[str, Tuple[str, str, str, Optional[Dict[str, object]]]],
    ) -> CounterBank:
        """The named :class:`CounterBank`, created and wired on first use.

        ``fields`` maps cell attribute names to ``(kind, metric_name,
        help, labels)`` specs; kind must be ``counter`` or ``gauge``.
        A spec may carry a fifth element naming *another* field's
        attribute: the child then aliases that field's cell column
        (see :class:`CounterBank`) instead of getting its own — its
        own attribute key never becomes a slot.  Banks are keyed by
        ``name`` — later calls return the existing bank unchanged, so
        handle rebinding on enable/disable can never double-attach a
        column to its children.
        """
        existing = self._banks.get(name)
        if existing is not None:
            return existing
        children: List[Tuple[str, _Sharded]] = []
        for attr, spec in fields.items():
            if len(spec) == 5:
                kind, metric_name, help_text, labels, column = spec
                if column not in fields or len(fields[column]) == 5:
                    raise ObservabilityError(
                        f"bank field {attr!r} aliases {column!r}, which is "
                        f"not a direct field of this bank"
                    )
            else:
                kind, metric_name, help_text, labels = spec
                column = attr
            if kind not in ("counter", "gauge"):
                raise ObservabilityError(
                    f"bank field {attr!r} must be a counter or gauge, "
                    f"not a {kind}"
                )
            children.append(
                (column, self.bind(kind, metric_name, help_text, labels=labels))
            )
        with self._lock:
            existing = self._banks.get(name)
            if existing is None:
                existing = CounterBank(children)
                self._banks[name] = existing
            return existing

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look up a family by name (None when absent)."""
        return self._families.get(name)

    def reset(self) -> None:
        """Reset every metric in place (families and labels survive)."""
        for family in self.families():
            family.reset()
        with self._lock:
            self._dropped_reported = 0

    def samples_dropped_total(self) -> int:
        """Histogram observations batch-attributed instead of bucketed.

        Summed across every histogram child in this process (worker
        snapshots merge bucket counts, not drop diagnostics, so this
        is a per-process figure).  Zero unless some histogram was
        created with ``sample_rate > 1``.
        """
        total = 0
        for family in self.families():
            if family.kind != "histogram":
                continue
            for _, child in family.children():
                total += child.samples_dropped  # type: ignore[attr-defined]
        return total

    def account_exposition(self) -> None:
        """Record one exposition's worth of telemetry-about-telemetry.

        Called at exposition boundaries only (the ``/metrics`` handler
        and the CLI metrics sink) — *not* from :meth:`snapshot` or the
        exporters, which must stay pure so worker snapshots and
        Prometheus round-trips don't manufacture counts.  Increments
        ``repro_metric_shard_folds_total`` once and ships the growth in
        dropped histogram samples since the previous call.
        """
        dropped = self.samples_dropped_total()
        with self._lock:
            delta = dropped - self._dropped_reported
            self._dropped_reported = dropped
        self.counter(
            SHARD_FOLD_COUNTER,
            help="Shard folds performed at metric exposition time.",
        ).inc()
        if delta > 0:
            self.counter(
                SAMPLES_DROPPED_COUNTER,
                help="Histogram observations batch-attributed by sampling.",
            ).inc(delta)

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is the cross-process aggregation primitive: worker
        processes in ``experiments.parallel.map_cells`` snapshot their
        local registry and ship it back with each result chunk; the
        parent merges every snapshot here so ``--workers N`` runs
        report the same counters as serial runs.

        Counters and gauges add; histograms merge bucket-wise (their
        fixed log-scale bounds make this lossless).  Families and
        label sets absent from this registry are created.  Each call
        increments ``repro_registry_merges_total``.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            help_text = data.get("help", "")
            for child in data.get("children", ()):
                labels = child.get("labels", {})
                if kind == "counter":
                    target = self.counter(name, help_text, **labels)
                    # A derived counter (histogram-count alias) gets its
                    # cross-process total through the source histogram's
                    # bucket merge below; folding the snapshot value too
                    # would double-count every remote event.
                    if not target.derived:
                        target.inc(child["value"])
                elif kind == "gauge":
                    # Gauges are levels, but across processes the only
                    # meaningful fold is additive (resident records in
                    # worker A + worker B = total resident records).
                    self.gauge(name, help_text, **labels).inc(child["value"])
                elif kind == "histogram":
                    buckets = child["buckets"]
                    finite = tuple(
                        float(le) for le, _ in buckets if le != "+Inf"
                    )
                    self.histogram(
                        name, help_text, buckets=finite or None, **labels
                    ).merge_cumulative(buckets, child["sum"], child["count"])
                else:
                    raise ObservabilityError(
                        f"cannot merge metric {name!r} of kind {kind!r}"
                    )
        self.counter(
            "repro_registry_merges_total",
            help="Cross-process registry snapshots merged into this one.",
        ).inc()

    def snapshot(self) -> Dict[str, dict]:
        """A plain-data view of every metric (drives the exporters)."""
        out: Dict[str, dict] = {}
        for family in self.families():
            children = []
            for key, child in family.children():
                labels = dict(key)
                if family.kind == "histogram":
                    pairs, sum_, count = child.exposition()  # type: ignore[attr-defined]
                    children.append(
                        {
                            "labels": labels,
                            "sum": sum_,
                            "count": count,
                            "buckets": [
                                ["+Inf" if math.isinf(le) else le, bucket]
                                for le, bucket in pairs
                            ],
                        }
                    )
                else:
                    children.append(
                        {"labels": labels, "value": child.value}  # type: ignore[attr-defined]
                    )
            out[family.name] = {
                "type": family.kind,
                "help": family.help_text,
                "children": children,
            }
        return out


class _NullMetric:
    """Absorbs every metric operation; shared by all disabled handles."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def set(self, value: float) -> None:  # noqa: D102
        pass

    def observe(self, value: float) -> None:  # noqa: D102
        pass

    def observe_many(self, value: float, count: int) -> None:  # noqa: D102
        pass

    def reset(self) -> None:  # noqa: D102
        pass


NULL_METRIC = _NullMetric()


class _NullBank:
    """Write-absorbing :class:`CounterBank` stand-in for disabled mode.

    Hands out one shared cell whose fields exist and accept in-place
    adds; the writes go nowhere.  Shared across threads — the garbage
    sums are never read.
    """

    __slots__ = ("_cell",)

    def __init__(self, fields: Sequence[str]):
        cell_type = type(
            "_NullBankCell", (object,), {"__slots__": tuple(fields)}
        )
        cell = cell_type()
        for attr in fields:
            setattr(cell, attr, 0.0)
        self._cell = cell

    def cell(self):
        return self._cell


class NullRegistry:
    """Registry stand-in used while observability is disabled.

    Every lookup returns the shared :data:`NULL_METRIC`, so
    instrumentation can run unconditionally without allocating.
    """

    def __init__(self) -> None:
        self._banks: Dict[str, _NullBank] = {}

    def counter(self, name: str, help: str = "", **labels: object) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels: object) -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: Optional[int] = None,
        **labels: object,
    ) -> _NullMetric:
        return NULL_METRIC

    def bind(
        self,
        kind: str,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: Optional[int] = None,
        labels: Optional[Dict[str, object]] = None,
    ) -> _NullMetric:
        return NULL_METRIC

    def bank(
        self,
        name: str,
        fields: Dict[str, Tuple[str, str, str, Optional[Dict[str, object]]]],
    ) -> _NullBank:
        existing = self._banks.get(name)
        if existing is None:
            existing = self._banks[name] = _NullBank(tuple(fields))
        return existing

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def reset(self) -> None:
        pass

    def samples_dropped_total(self) -> int:
        return 0

    def account_exposition(self) -> None:
        pass

    def merge(self, snapshot: Dict[str, dict]) -> None:
        pass

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_REGISTRY = NullRegistry()
