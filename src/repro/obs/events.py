"""Structured JSONL event sink.

Metrics aggregate; events narrate.  A :class:`StructuredLog` appends
one JSON object per line to a file (or any text stream), giving an
replayable record of what the system did: spans closing with their
durations, simulation periods completing, losses occurring.  The
format is deliberately boring — ``jq`` and a pager are the intended
consumers.

Every event carries:

* ``ts``    — wall-clock UNIX timestamp (seconds, float);
* ``type``  — event class (``"span"``, ``"period"``, ...);
* ``name``  — the specific event within the class;
* any extra fields the emitter attached.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import IO, Optional, Union


class StructuredLog:
    """Thread-safe JSON-lines event writer.

    Parameters
    ----------
    sink:
        A path to append to, or an already-open text stream (the
        stream is *not* closed by :meth:`close` unless the log opened
        it itself).
    """

    def __init__(self, sink: Union[str, IO[str]]):
        self._lock = threading.Lock()
        if isinstance(sink, (str, bytes)):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = str(sink)
        else:
            self._stream = sink
            self._owns_stream = False
            self.path = getattr(sink, "name", None)
        self._events_written = 0
        self._closed = False

    @property
    def events_written(self) -> int:
        """Number of events emitted so far."""
        return self._events_written

    def emit(self, type: str, name: str, **fields: object) -> None:
        """Write one event line; silently drops events after close."""
        record = {"ts": time.time(), "type": type, "name": name}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self._events_written += 1

    def flush(self) -> None:
        """Flush the underlying stream."""
        with self._lock:
            if not self._closed:
                self._stream.flush()

    def close(self) -> None:
        """Flush and (when owned) close the underlying stream."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._stream.flush()
            except (ValueError, OSError):  # stream already gone
                pass
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "StructuredLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def memory_log() -> "tuple[StructuredLog, io.StringIO]":
    """A log writing into an in-memory buffer (tests, reports)."""
    buffer = io.StringIO()
    return StructuredLog(buffer), buffer
