"""Timing spans: scoped wall-clock measurement of named operations.

A span times a block of work and, when observability is active,
records the duration into the ``repro_span_duration_seconds``
histogram (labelled by span name) and emits a structured event to the
active JSONL sink, including the parent span for nested work::

    from repro.obs.spans import span

    with span("sketch.and_join", bits=m):
        ... do the join ...

Spans nest naturally — a ``sim.period`` span around a measurement
period will show up as the parent of every ``sketch.and_join`` span
opened inside it.  Nesting is tracked per thread.

When observability is disabled, :func:`span` returns a shared no-op
context manager without touching the clock, so sprinkling spans on hot
paths is safe.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs import runtime

#: Histogram fed by every closed span, labelled span=<name>.
SPAN_HISTOGRAM = "repro_span_duration_seconds"

_stacks = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_stacks, "spans", None)
    if stack is None:
        stack = []
        _stacks.spans = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed scope.  Use via :func:`span`, not directly."""

    __slots__ = ("name", "attrs", "duration", "_started", "_parent_name", "_depth")

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.duration: Optional[float] = None
        self._started = 0.0
        self._parent_name: Optional[str] = None
        self._depth = 0

    @property
    def parent_name(self) -> Optional[str]:
        """Name of the enclosing span at entry, or None at top level."""
        return self._parent_name

    @property
    def depth(self) -> int:
        """Nesting depth at entry (0 = top level)."""
        return self._depth

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self._parent_name = stack[-1].name
        self._depth = len(stack)
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if runtime.enabled():
            runtime.histogram(
                SPAN_HISTOGRAM,
                help="Wall-clock duration of instrumented spans.",
                span=self.name,
            ).observe(self.duration)
            log = runtime.event_log()
            if log is not None:
                log.emit(
                    "span",
                    self.name,
                    duration_seconds=self.duration,
                    parent=self._parent_name,
                    depth=self._depth,
                    error=exc_type.__name__ if exc_type is not None else None,
                    **self.attrs,
                )
        return False


class _NullSpan:
    """Reusable do-nothing span for the disabled path."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, object] = {}
    duration = None
    parent_name = None
    depth = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: object):
    """A context manager timing ``name`` (no-op while disabled).

    Extra keyword attributes ride along on the emitted JSONL event
    (they do *not* become histogram labels — durations aggregate per
    span name only, keeping cardinality bounded).
    """
    if not runtime.enabled():
        return _NULL_SPAN
    return Span(name, attrs)
