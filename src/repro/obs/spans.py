"""Timing spans: scoped wall-clock measurement of named operations.

A span times a block of work and, when observability is active,
records the duration into the ``repro_span_duration_seconds``
histogram (labelled by span name) and emits a structured event to the
active JSONL sink, including the parent span for nested work::

    from repro.obs.spans import span

    with span("sketch.and_join", bits=m):
        ... do the join ...

Spans nest naturally — a ``sim.period`` span around a measurement
period will show up as the parent of every ``sketch.and_join`` span
opened inside it.  Nesting is tracked per thread.

When a :class:`~repro.obs.trace.TraceBuffer` is installed
(``obs.enable(trace=...)``), spans additionally carry distributed
trace context: a root span starts a new trace, children inherit the
trace id via a contextvar, and every closed span is recorded into the
buffer.  A span may also *link* to spans in other traces (a query
touching a record delivered by an earlier upload trace) via
:meth:`Span.add_link` / :func:`add_link`.

When observability is disabled, :func:`span` returns a shared no-op
context manager without touching the clock, so sprinkling spans on hot
paths is safe.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs import runtime, trace as trace_mod
from repro.obs.trace import SpanRecord, TraceContext

#: Histogram fed by every closed span, labelled span=<name>.
SPAN_HISTOGRAM = "repro_span_duration_seconds"

#: Span durations sample bucket attribution (count and sum — the
#: quantities dashboards rate() and average — stay exact; only the
#: per-bucket split of each thread's stream is approximated).  The
#: rate is family-wide, so every binder of :data:`SPAN_HISTOGRAM`
#: must pass it.
SPAN_SAMPLE_RATE = 8

#: Bound duration handles per span name: names are open-ended but few,
#: so handles are created on first close and reused ever after.
_duration_handles: Dict[str, "runtime.BoundMetric"] = {}
_duration_lock = threading.Lock()


def _duration_handle(name: str) -> "runtime.BoundMetric":
    handle = _duration_handles.get(name)
    if handle is None:
        with _duration_lock:
            handle = _duration_handles.get(name)
            if handle is None:
                handle = runtime.bind_histogram(
                    SPAN_HISTOGRAM,
                    help="Wall-clock duration of instrumented spans.",
                    sample_rate=SPAN_SAMPLE_RATE,
                    span=name,
                )
                _duration_handles[name] = handle
    return handle


_stacks = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_stacks, "spans", None)
    if stack is None:
        stack = []
        _stacks.spans = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed scope.  Use via :func:`span`, not directly."""

    __slots__ = (
        "name",
        "attrs",
        "duration",
        "context",
        "parent_context",
        "links",
        "start_ts",
        "_started",
        "_parent_name",
        "_depth",
        "_ctx_token",
    )

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.duration: Optional[float] = None
        #: This span's trace context (None unless tracing is active).
        self.context: Optional[TraceContext] = None
        #: The context this span was opened under, if any.
        self.parent_context: Optional[TraceContext] = None
        #: Cross-trace links added via :meth:`add_link`.
        self.links: List[TraceContext] = []
        self.start_ts = 0.0
        self._started = 0.0
        self._parent_name: Optional[str] = None
        self._depth = 0
        self._ctx_token = None

    @property
    def parent_name(self) -> Optional[str]:
        """Name of the enclosing span at entry, or None at top level."""
        return self._parent_name

    @property
    def depth(self) -> int:
        """Nesting depth at entry (0 = top level)."""
        return self._depth

    def add_link(self, context: Optional[TraceContext]) -> bool:
        """Link this span to a span in another trace.

        Used when causality crosses a data boundary rather than a call
        stack: a query span links to the upload span that delivered
        (or dead-lettered) a record it touched, a cache hit links to
        the trace that built the memoized join.  No-op (False) when
        the span carries no trace context or ``context`` is None.
        """
        if context is None or self.context is None:
            return False
        self.links.append(context)
        return True

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self._parent_name = stack[-1].name
        self._depth = len(stack)
        stack.append(self)
        if runtime.tracing():
            self.parent_context = trace_mod.current()
            if self.parent_context is None:
                trace_id = trace_mod.new_trace_id()
                runtime.counter(
                    "repro_traces_total",
                    help="Traces started (root spans opened while tracing).",
                ).inc()
            else:
                trace_id = self.parent_context.trace_id
            self.context = TraceContext(trace_id, trace_mod.new_span_id())
            self._ctx_token = trace_mod.activate(self.context)
            self.start_ts = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._ctx_token is not None:
            trace_mod.restore(self._ctx_token)
            self._ctx_token = None
        if runtime.enabled():
            _duration_handle(self.name).observe(self.duration)
            buffer = runtime.trace_buffer()
            if buffer is not None and self.context is not None:
                # ``attrs`` is handed over, not copied: it is the
                # span-private dict built from ``span()``'s kwargs, and
                # the span is closed.
                buffer.record(
                    SpanRecord(
                        trace_id=self.context.trace_id,
                        span_id=self.context.span_id,
                        parent_id=(
                            self.parent_context.span_id
                            if self.parent_context is not None
                            else None
                        ),
                        name=self.name,
                        start=self.start_ts,
                        duration=self.duration,
                        attrs=self.attrs,
                        error=exc_type.__name__ if exc_type is not None else None,
                        links=tuple(self.links),
                    )
                )
            log = runtime.event_log()
            if log is not None:
                extra = {}
                if self.context is not None:
                    extra["trace_id"] = self.context.trace_id
                    extra["span_id"] = self.context.span_id
                log.emit(
                    "span",
                    self.name,
                    duration_seconds=self.duration,
                    parent=self._parent_name,
                    depth=self._depth,
                    error=exc_type.__name__ if exc_type is not None else None,
                    **extra,
                    **self.attrs,
                )
        return False


class _MetricSpan:
    """Metrics-only span: nesting stack + duration histogram, nothing else.

    :func:`span` hands these out when neither tracing nor an event log
    is active — the overwhelmingly common enabled configuration — so
    the per-span cost is two clock reads, two stack operations and one
    histogram observe.  The trace-facing surface (``context``,
    ``links``, :meth:`add_link`) is present but inert, matching what a
    full :class:`Span` reports when tracing is off.  A trace buffer or
    event log attached *while* such a span is open is picked up only
    by spans opened afterwards.
    """

    __slots__ = (
        "name", "attrs", "duration", "_started", "_parent_name", "_depth",
    )

    #: Trace context never exists in metrics-only mode.
    context = None
    parent_context = None
    links: List[TraceContext] = []
    start_ts = 0.0

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.duration: Optional[float] = None
        self._parent_name: Optional[str] = None
        self._depth = 0

    @property
    def parent_name(self) -> Optional[str]:
        """Name of the enclosing span at entry, or None at top level."""
        return self._parent_name

    @property
    def depth(self) -> int:
        """Nesting depth at entry (0 = top level)."""
        return self._depth

    def add_link(self, context) -> bool:
        """Links need trace context; always False in metrics-only mode."""
        return False

    def __enter__(self) -> "_MetricSpan":
        stack = _stack()
        if stack:
            self._parent_name = stack[-1].name
        self._depth = len(stack)
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if runtime.ACTIVE:
            _duration_handle(self.name).observe(self.duration)
        return False


class _NullSpan:
    """Reusable do-nothing span for the disabled path."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, object] = {}
    duration = None
    parent_name = None
    depth = 0
    context = None
    parent_context = None
    links: List[TraceContext] = []

    def add_link(self, context) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def add_link(context: Optional[TraceContext]) -> bool:
    """Link the innermost open span on this thread to ``context``.

    Convenience for call sites that hold a stored context (a cache
    entry's build context, a record binding) but not the span object.
    Returns False when there is no open span, no trace context, or
    ``context`` is None.
    """
    open_span = current_span()
    if open_span is None:
        return False
    return open_span.add_link(context)


def span(name: str, **attrs: object):
    """A context manager timing ``name`` (no-op while disabled).

    Extra keyword attributes ride along on the emitted JSONL event
    (they do *not* become histogram labels — durations aggregate per
    span name only, keeping cardinality bounded).
    """
    if not runtime.ACTIVE:
        return _NULL_SPAN
    if runtime.DETAILED:
        return Span(name, attrs)
    return _MetricSpan(name, attrs)


def trace_span(name: str, **attrs: object):
    """A span only when it will be externally visible.

    Hands out a full :class:`Span` while a trace buffer or event log
    is attached, and the shared no-op otherwise.  For call sites whose
    duration histogram is fed by fused accounting the site already
    performs (e.g. ``CentralServer._observe_query``) — a metrics-only
    :class:`_MetricSpan` there would duplicate both the clock reads
    and the histogram observation.
    """
    if runtime.DETAILED:
        return Span(name, attrs)
    return _NULL_SPAN
