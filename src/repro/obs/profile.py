"""Hotspot profiling for simulate/experiment runs (``--profile``).

Two engines behind one :class:`Profiler` context manager:

* ``cprofile`` — deterministic tracing via :mod:`cProfile`.  Exact
  call counts and per-function self/cumulative time, at the cost of
  tracing overhead on every call (fine for offline analysis, the
  default for ``--profile``).
* ``wall`` — statistical sampling: a daemon thread snapshots the
  profiled thread's stack (``sys._current_frames()``) every
  ``interval`` seconds.  Near-zero overhead on the profiled code;
  self/total seconds are estimated as ``samples x interval``.

Either way the result is a :class:`ProfileReport`: ranked
:class:`Hotspot` rows plus a per-subsystem rollup
(:meth:`ProfileReport.by_subsystem`) that attributes time to the repro
subpackage owning each frame — the breakdown BENCH_obs.json uses to
show where the enabled-telemetry tax lives.  Reports render as JSON
(``to_json``) and human text (``format_text``) and are served by the
httpd ``/profile`` endpoint via :func:`last_report`.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ObservabilityError
from repro.obs import runtime as obs
from repro.obs.runtime import PROFILE_RUNS_COUNTER

#: Engines accepted by :class:`Profiler` and the CLI ``--profile`` flag.
ENGINES = ("cprofile", "wall")

#: Subsystems of the ``repro`` package used for rollups; frames outside
#: the package (stdlib, numpy, ...) are attributed to ``other``.
_SUBSYSTEM_MARKER = "repro"


@dataclass(frozen=True)
class Hotspot:
    """One profiled function, ranked by self time."""

    function: str
    file: str
    line: int
    calls: int
    self_seconds: float
    total_seconds: float

    @property
    def subsystem(self) -> str:
        """The repro subpackage owning this frame (``other`` outside)."""
        return subsystem_of(self.file)

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "file": self.file,
            "line": self.line,
            "calls": self.calls,
            "self_seconds": round(self.self_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "subsystem": self.subsystem,
        }


def subsystem_of(path: str) -> str:
    """Map a frame's file path to the repro subpackage that owns it.

    ``.../src/repro/sketch/join.py`` -> ``sketch``; top-level modules
    (``repro/cli.py``) map to their stem; anything outside the package
    (stdlib, site-packages, builtins) maps to ``other``.
    """
    parts = path.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == _SUBSYSTEM_MARKER:
            remainder = parts[index + 1:]
            if not remainder:
                break
            if len(remainder) == 1:  # repro/cli.py, repro/__init__.py
                stem = remainder[0].rsplit(".", 1)[0]
                return "repro" if stem == "__init__" else stem
            return remainder[0]
    return "other"


@dataclass
class ProfileReport:
    """The outcome of one profiling session."""

    engine: str
    duration_seconds: float
    hotspots: List[Hotspot] = field(default_factory=list)
    #: Wall engine only: stack snapshots taken (0 for cprofile).
    samples: int = 0

    def top(self, n: int = 10) -> List[Hotspot]:
        """The ``n`` largest hotspots by self time."""
        return sorted(
            self.hotspots, key=lambda h: h.self_seconds, reverse=True
        )[:n]

    def by_subsystem(self) -> Dict[str, float]:
        """Self-seconds rolled up per repro subsystem, largest first."""
        totals: Dict[str, float] = {}
        for hotspot in self.hotspots:
            key = hotspot.subsystem
            totals[key] = totals.get(key, 0.0) + hotspot.self_seconds
        return dict(
            sorted(totals.items(), key=lambda item: item[1], reverse=True)
        )

    def to_dict(self, top_n: int = 20) -> dict:
        return {
            "engine": self.engine,
            "duration_seconds": round(self.duration_seconds, 6),
            "samples": self.samples,
            "subsystems": {
                name: round(seconds, 6)
                for name, seconds in self.by_subsystem().items()
            },
            "hotspots": [h.to_dict() for h in self.top(top_n)],
        }

    def to_json(self, top_n: int = 20) -> str:
        return json.dumps(self.to_dict(top_n), indent=2, sort_keys=True)

    def format_text(self, top_n: int = 20) -> str:
        """A one-screen human rendering (mirrors ``format_report``)."""
        lines = [
            f"profile: engine={self.engine} "
            f"duration={self.duration_seconds:.3f}s"
            + (f" samples={self.samples}" if self.engine == "wall" else ""),
            "",
            "by subsystem (self seconds):",
        ]
        subsystems = self.by_subsystem()
        total = sum(subsystems.values()) or 1.0
        for name, seconds in subsystems.items():
            lines.append(
                f"  {name:<14} {seconds:>9.4f}s  {100 * seconds / total:5.1f}%"
            )
        lines.append("")
        lines.append(f"top {top_n} hotspots (self seconds):")
        for h in self.top(top_n):
            location = f"{h.file}:{h.line}"
            lines.append(
                f"  {h.self_seconds:>9.4f}s {h.total_seconds:>9.4f}s "
                f"{h.calls:>9d}  {h.function}  ({location})"
            )
        return "\n".join(lines) + "\n"


#: The most recent completed report, served by the ``/profile`` endpoint.
_last_report: Optional[ProfileReport] = None
_last_lock = threading.Lock()


def last_report() -> Optional[ProfileReport]:
    """The most recently completed profile, or None."""
    with _last_lock:
        return _last_report


def _set_last_report(report: ProfileReport) -> None:
    global _last_report
    with _last_lock:
        _last_report = report


class _WallSampler:
    """Daemon thread that samples one thread's stack at an interval."""

    def __init__(self, thread_ident: int, interval: float):
        self._ident = thread_ident
        self._interval = interval
        self._stop = threading.Event()
        #: (file, line, function) -> [self_samples, total_samples]
        self.frames: Dict[Tuple[str, int, str], List[int]] = {}
        self.samples = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-wall-profiler", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            frame = sys._current_frames().get(self._ident)
            if frame is None:
                continue
            self.samples += 1
            seen = set()
            leaf = True
            while frame is not None:
                code = frame.f_code
                key = (code.co_filename, code.co_firstlineno, code.co_name)
                entry = self.frames.setdefault(key, [0, 0])
                if leaf:
                    entry[0] += 1
                    leaf = False
                if key not in seen:  # count recursion once per stack
                    entry[1] += 1
                    seen.add(key)
                frame = frame.f_back


class Profiler:
    """Capture hotspots for a code region; usable as a context manager.

    >>> with Profiler(engine="cprofile") as profiler:
    ...     sum(range(1000))
    500500
    >>> profiler.report.engine
    'cprofile'

    On ``stop()`` the report is published to :func:`last_report` (the
    ``/profile`` endpoint) and ``repro_profile_runs_total`` is
    incremented when observability is enabled.
    """

    def __init__(self, engine: str = "cprofile", interval: float = 0.005):
        if engine not in ENGINES:
            raise ObservabilityError(
                f"unknown profile engine {engine!r}; expected one of {ENGINES}"
            )
        if interval <= 0:
            raise ObservabilityError(
                f"sampling interval must be positive, got {interval}"
            )
        self.engine = engine
        self.interval = interval
        self.report: Optional[ProfileReport] = None
        self._started_at = 0.0
        self._cprofile: Optional[cProfile.Profile] = None
        self._sampler: Optional[_WallSampler] = None

    def start(self) -> "Profiler":
        """Begin capturing (idempotent start is an error by design)."""
        self._started_at = time.perf_counter()
        if self.engine == "cprofile":
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        else:
            self._sampler = _WallSampler(
                threading.get_ident(), self.interval
            )
            self._sampler.start()
        return self

    def stop(self) -> ProfileReport:
        """Finish capturing and publish the report."""
        duration = time.perf_counter() - self._started_at
        if self.engine == "cprofile":
            assert self._cprofile is not None
            self._cprofile.disable()
            report = self._from_cprofile(self._cprofile, duration)
            self._cprofile = None
        else:
            assert self._sampler is not None
            self._sampler.stop()
            report = self._from_sampler(self._sampler, duration)
            self._sampler = None
        self.report = report
        _set_last_report(report)
        if obs.enabled():
            obs.counter(
                PROFILE_RUNS_COUNTER,
                "Profiling sessions completed (cprofile or wall engine).",
            ).inc()
        return report

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _from_cprofile(
        self, profile: cProfile.Profile, duration: float
    ) -> ProfileReport:
        stats = pstats.Stats(profile)
        hotspots = []
        for (file, line, function), entry in stats.stats.items():  # type: ignore[attr-defined]
            _, ncalls, tottime, cumtime, _ = entry
            hotspots.append(
                Hotspot(
                    function=function,
                    file=file,
                    line=line,
                    calls=ncalls,
                    self_seconds=tottime,
                    total_seconds=cumtime,
                )
            )
        return ProfileReport(
            engine="cprofile", duration_seconds=duration, hotspots=hotspots
        )

    def _from_sampler(
        self, sampler: _WallSampler, duration: float
    ) -> ProfileReport:
        # Convert sample counts to seconds: each sample represents one
        # interval of wall time attributed to the sampled stack.
        hotspots = [
            Hotspot(
                function=function,
                file=file,
                line=line,
                calls=0,
                self_seconds=self_samples * self.interval,
                total_seconds=total_samples * self.interval,
            )
            for (file, line, function), (self_samples, total_samples)
            in sampler.frames.items()
        ]
        return ProfileReport(
            engine="wall",
            duration_seconds=duration,
            hotspots=hotspots,
            samples=sampler.samples,
        )
