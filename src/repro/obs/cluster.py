"""Cluster telemetry: one observability domain over N shard processes.

The sharded tier (PRs 7–8) runs its observability per process: each
worker enables a private registry, and spans recorded inside a worker
die in its private :class:`~repro.obs.trace.TraceBuffer`.  This module
is the collection plane that stitches those islands together:

* :class:`TelemetryBuffer` — the trace buffer a shard worker installs.
  Besides the normal ring it keeps a bounded export queue of every
  closed span and record binding; :meth:`TelemetryBuffer.drain`
  empties the queue into a JSON-safe payload the worker ships to the
  front door (piggy-backed on ``MSG_STATS_REPLY`` and served by the
  dedicated ``MSG_TELEMETRY`` drain request).
* :class:`ClusterTelemetry` — the front-door collector.  It absorbs
  shipped payloads into the front door's own trace buffer (span ids,
  record bindings and cross-trace links survive verbatim, so a TCP
  upload renders as *one* :func:`~repro.obs.trace.format_trace_tree`
  tree spanning processes), pulls per-shard ``stats()`` snapshots
  with a staleness bound, folds the shard registries into one merged
  scrape view, and reports per-shard health for the ``/shards``
  endpoint.

Metric catalog (all pre-registered at zero by
:func:`register_cluster_metrics`):

* ``repro_telemetry_spans_shipped_total`` — spans drained out of a
  worker's export queue (counted worker-side only, so the cluster
  merge never double-counts).
* ``repro_telemetry_spans_dropped_total`` — spans lost to export-queue
  overflow or structurally damaged in transit.
* ``repro_cluster_scrape_staleness_seconds`` — age of the shard
  snapshots behind the most recent merged scrape.
* ``repro_query_explain_total`` — fan-out queries that requested an
  explain breakdown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

from repro.obs import runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    DEFAULT_MAX_TRACES,
    SpanRecord,
    TraceBuffer,
    TraceContext,
)

#: Spans drained out of a worker's export queue (worker-side count).
SPANS_SHIPPED_COUNTER = "repro_telemetry_spans_shipped_total"
#: Spans lost to export-queue overflow or damaged in transit.
SPANS_DROPPED_COUNTER = "repro_telemetry_spans_dropped_total"
#: Age (seconds) of the shard snapshots behind the last merged scrape.
SCRAPE_STALENESS_GAUGE = "repro_cluster_scrape_staleness_seconds"
#: Fan-out queries that asked for an explain breakdown.
QUERY_EXPLAIN_COUNTER = "repro_query_explain_total"

#: Bound of a worker's span/binding export queues (drop-oldest beyond).
DEFAULT_MAX_PENDING = 4096


def register_cluster_metrics(registry=None) -> None:
    """Pre-register the cluster telemetry series so they export at zero.

    Follows the repo's export-at-zero convention (PR 1): a fresh scrape
    shows every series the process *can* emit, so dashboards and CI
    greps never have to distinguish "zero" from "not wired".  Safe on a
    :class:`~repro.obs.metrics.NullRegistry`.
    """
    target = registry if registry is not None else runtime.registry()
    target.counter(
        SPANS_SHIPPED_COUNTER,
        help="Spans drained from a worker's telemetry export queue.",
    )
    target.counter(
        SPANS_DROPPED_COUNTER,
        help="Spans lost to telemetry queue overflow or transit damage.",
    )
    target.gauge(
        SCRAPE_STALENESS_GAUGE,
        help="Age of the shard snapshots behind the last merged scrape.",
    )
    target.counter(
        QUERY_EXPLAIN_COUNTER,
        help="Fan-out queries that requested an explain breakdown.",
    )


class TelemetryBuffer(TraceBuffer):
    """A shard worker's trace buffer with an export queue bolted on.

    Every closed span and record binding lands in the normal ring *and*
    in a bounded pending queue.  :meth:`drain` empties the queue into a
    JSON-safe payload; the queue dropping its oldest entry under
    pressure is counted (``repro_telemetry_spans_dropped_total``), never
    silent — a worker that cannot ship fast enough loses visibility,
    not correctness.
    """

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        super().__init__(max_traces)
        self._pending_lock = threading.Lock()
        self._max_pending = max(1, int(max_pending))
        self._pending_spans: "deque[SpanRecord]" = deque()
        self._pending_bindings: "deque[tuple]" = deque()

    # ------------------------------------------------------------------
    # Recording (ring + export queue)
    # ------------------------------------------------------------------

    def record(self, record: SpanRecord) -> None:
        super().record(record)
        dropped = 0
        with self._pending_lock:
            # The immutable record itself is queued; JSON-safe dicts
            # are built at drain time, keeping serialization cost off
            # the per-span ingest path.
            self._pending_spans.append(record)
            while len(self._pending_spans) > self._max_pending:
                self._pending_spans.popleft()
                dropped += 1
        if dropped and runtime.ACTIVE:
            runtime.counter(
                SPANS_DROPPED_COUNTER,
                help=(
                    "Spans lost to telemetry queue overflow or transit "
                    "damage."
                ),
            ).inc(dropped)

    def bind(
        self,
        location: int,
        period: int,
        context: TraceContext,
        kind: str = "record",
    ) -> None:
        super().bind(location, period, context, kind=kind)
        with self._pending_lock:
            self._pending_bindings.append(
                (int(location), int(period), context, kind)
            )
            # Bindings ride the span bound: one binding per delivered
            # record, so the same backpressure applies.
            while len(self._pending_bindings) > self._max_pending:
                self._pending_bindings.popleft()

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Spans currently queued for export (tests and backpressure)."""
        with self._pending_lock:
            return len(self._pending_spans)

    def drain(self) -> dict:
        """Empty the export queue into one JSON-safe payload.

        Destructive: a drained span ships exactly once.  Increments the
        worker-side ``repro_telemetry_spans_shipped_total`` counter,
        which the front door's registry merge then carries into the
        cluster total without double counting.
        """
        with self._pending_lock:
            raw_spans = list(self._pending_spans)
            raw_bindings = list(self._pending_bindings)
            self._pending_spans.clear()
            self._pending_bindings.clear()
        spans = [record.to_dict() for record in raw_spans]
        bindings = [
            {
                "location": location,
                "period": period,
                "trace_id": context.trace_id,
                "span_id": context.span_id,
                "kind": kind,
            }
            for location, period, context, kind in raw_bindings
        ]
        if spans and runtime.ACTIVE:
            runtime.counter(
                SPANS_SHIPPED_COUNTER,
                help="Spans drained from a worker's telemetry export queue.",
            ).inc(len(spans))
        return {"spans": spans, "bindings": bindings}


class ClusterTelemetry:
    """The front door's collector: merge N shard telemetry islands.

    Parameters
    ----------
    service:
        The :class:`~repro.server.sharded.service.ShardedIngestService`
        whose shards to collect from (used for backends, liveness,
        fence/hold state and restart counts).
    buffer:
        The front-door trace buffer shipped spans merge into (defaults
        to the runtime buffer at absorb time).
    registry:
        The front-door registry (defaults to the runtime registry);
        cluster metrics are pre-registered on it immediately.
    max_staleness:
        Seconds a shard snapshot may age before :meth:`refresh`
        re-pulls it (scrapes inside the bound reuse cached snapshots).
    """

    def __init__(
        self,
        service,
        buffer: Optional[TraceBuffer] = None,
        registry: Optional[MetricsRegistry] = None,
        max_staleness: float = 1.0,
    ):
        self._service = service
        self._buffer = buffer
        self._registry = registry
        self._max_staleness = float(max_staleness)
        self._lock = threading.RLock()
        self._refreshed_at = 0.0
        #: shard -> wall time the last telemetry payload was absorbed.
        self._last_seen: Dict[int, float] = {}
        #: shard -> last metrics snapshot (from ``stats()``).
        self._shard_metrics: Dict[int, dict] = {}
        #: shard -> last scalar engine stats (records, WAL depth, ...).
        self._shard_stats: Dict[int, dict] = {}
        register_cluster_metrics(self.resolve_registry())

    # ------------------------------------------------------------------
    # Resolution (explicit wiring beats the runtime globals)
    # ------------------------------------------------------------------

    def resolve_buffer(self) -> Optional[TraceBuffer]:
        """The trace buffer shipped spans merge into, or None."""
        if self._buffer is not None:
            return self._buffer
        return runtime.trace_buffer()

    def resolve_registry(self):
        """The front-door registry (falls back to the runtime one)."""
        if self._registry is not None:
            return self._registry
        return runtime.registry()

    # ------------------------------------------------------------------
    # Absorbing shipped telemetry
    # ------------------------------------------------------------------

    def absorb(self, shard: int, payload: Optional[dict]) -> int:
        """Merge one shipped telemetry payload; returns spans absorbed.

        Span/trace ids, parent links, record bindings and cross-trace
        links are preserved verbatim, so shard-side spans join the
        front-door spans of the same trace.  Structurally damaged
        entries are counted dropped, never raised — telemetry transport
        follows the same fault contract as record transport.
        """
        if not payload:
            return 0
        buffer = self.resolve_buffer()
        if buffer is None:
            return 0
        absorbed = 0
        damaged = 0
        for entry in payload.get("spans") or ():
            record = SpanRecord.from_dict(entry)
            if record is None:
                damaged += 1
                continue
            buffer.record(record)
            absorbed += 1
        for entry in payload.get("bindings") or ():
            try:
                buffer.bind(
                    int(entry["location"]),
                    int(entry["period"]),
                    TraceContext(
                        trace_id=str(entry["trace_id"]),
                        span_id=str(entry["span_id"]),
                    ),
                    kind=str(entry.get("kind", "record")),
                )
            except (KeyError, TypeError, ValueError):
                damaged += 1
        if damaged:
            self.resolve_registry().counter(
                SPANS_DROPPED_COUNTER,
                help=(
                    "Spans lost to telemetry queue overflow or transit "
                    "damage."
                ),
            ).inc(damaged)
        if absorbed:
            with self._lock:
                self._last_seen[int(shard)] = time.time()
        return absorbed

    # ------------------------------------------------------------------
    # Pulling
    # ------------------------------------------------------------------

    def _backends(self) -> Dict[int, object]:
        coordinator = getattr(self._service, "coordinator", None)
        if coordinator is None:
            return {}
        return coordinator.backends

    def refresh(self, force: bool = False) -> bool:
        """Pull every shard's stats/telemetry once per staleness bound.

        Returns True when a pull happened, False when the cached
        snapshots were still inside ``max_staleness``.  A shard that
        cannot answer keeps its previous snapshot (marked stale via
        ``last_telemetry_age_seconds``) — a scrape must never hang or
        fail because one worker is mid-restart.
        """
        now = time.time()
        with self._lock:
            if not force and now - self._refreshed_at < self._max_staleness:
                return False
            self._refreshed_at = now
        for shard, backend in sorted(self._backends().items()):
            try:
                payload = backend.stats()
            except Exception:
                # Dead, fenced or mid-restart: keep the last snapshot.
                continue
            self.absorb(shard, payload.pop("telemetry", None))
            metrics = payload.pop("metrics", {}) or {}
            with self._lock:
                if metrics:
                    self._shard_metrics[int(shard)] = metrics
                payload.pop("locations", None)
                self._shard_stats[int(shard)] = payload
        self.resolve_registry().gauge(
            SCRAPE_STALENESS_GAUGE,
            help=(
                "Age of the shard snapshots behind the last merged scrape."
            ),
        ).set(max(0.0, time.time() - now))
        return True

    def staleness(self) -> float:
        """Seconds since the last successful :meth:`refresh` pull."""
        with self._lock:
            if self._refreshed_at == 0.0:
                return float("inf")
            return max(0.0, time.time() - self._refreshed_at)

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """A fresh registry folding the front door and every shard.

        Built per call (the cached shard snapshots merge into a new
        registry each time) so repeated scrapes never compound counts.
        """
        merged = MetricsRegistry()
        live = self.resolve_registry()
        snapshot = getattr(live, "snapshot", None)
        if snapshot is not None:
            front = snapshot()
            if front:
                merged.merge(front)
        with self._lock:
            shard_snapshots = list(self._shard_metrics.values())
        for metrics in shard_snapshots:
            merged.merge(metrics)
        return merged

    def shards_payload(self) -> Dict[str, dict]:
        """Per-shard health for the ``/shards`` endpoint.

        Combines live service state (process liveness, hold/fence
        flags, restart counts, breaker state) with the cached engine
        stats (records, WAL depth, dead letters) and the age of the
        last absorbed telemetry.
        """
        service = self._service
        backends = self._backends()
        now = time.time()
        out: Dict[str, dict] = {}
        fenced = getattr(service, "fenced", {})
        for shard in range(service.n_shards):
            entry: Dict[str, object] = {
                "alive": bool(service.shard_alive(shard)),
                "held": bool(service.is_held(shard)),
                "fenced": bool(service.is_fenced(shard)),
                "fence_reason": fenced.get(shard),
                "restarts": int(service.restart_count(shard)),
            }
            backend = backends.get(shard)
            breaker = getattr(backend, "breaker", None)
            entry["breaker"] = (
                breaker.snapshot() if breaker is not None else None
            )
            with self._lock:
                stats = dict(self._shard_stats.get(shard, {}))
                seen = self._last_seen.get(shard)
            for key in ("records", "wal_entries", "dead_letters"):
                entry[key] = stats.get(key)
            entry["last_telemetry_age_seconds"] = (
                round(now - seen, 3) if seen is not None else None
            )
            out[str(shard)] = entry
        supervisor = getattr(service, "supervisor", None)
        status = getattr(supervisor, "status", None)
        if status is not None:
            for shard, health in status().items():
                if str(shard) in out:
                    out[str(shard)]["supervision"] = health
        return out


__all__ = [
    "ClusterTelemetry",
    "DEFAULT_MAX_PENDING",
    "QUERY_EXPLAIN_COUNTER",
    "SCRAPE_STALENESS_GAUGE",
    "SPANS_DROPPED_COUNTER",
    "SPANS_SHIPPED_COUNTER",
    "TelemetryBuffer",
    "register_cluster_metrics",
]
