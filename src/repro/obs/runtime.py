"""The process-global observability switch.

Instrumentation throughout the library funnels through this module.
By default nothing is active: :func:`enabled` returns False and the
metric accessors hand out shared no-op objects, so the hot paths
(`receive_record`, joins, expansions, encounters) pay only a guard —
one function call and a ``None`` comparison.  Tier-1 behaviour and
timings are therefore unchanged until someone opts in:

>>> from repro.obs import runtime
>>> registry = runtime.enable()
>>> runtime.counter("repro_demo_total").inc()
>>> registry.get("repro_demo_total") is not None
True
>>> _ = runtime.disable()
>>> runtime.enabled()
False

The canonical instrumentation idiom is::

    from repro.obs import runtime as obs
    ...
    if obs.enabled():
        obs.counter("repro_things_total", kind="x").inc()

The ``if`` guard keeps the disabled cost to the single ``enabled()``
call (no label kwargs are even packed); calling the accessors without
the guard is also safe — they return no-op metrics when disabled.

Hot call sites avoid even the accessor cost (name validation, label
sorting, family lookup) by *binding* a handle once at import time::

    _THINGS = obs.bind_counter("repro_things_total", kind="x")
    ...
    if obs.enabled():
        _THINGS.inc()

A :class:`BoundMetric` caches the resolved child and is re-resolved
eagerly by :func:`enable`/:func:`disable` (handles register in a weak
set), so the enabled cost of an update is a single delegation to one
lock-free shard add — no staleness check on the hot path.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.obs.events import StructuredLog
from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    SAMPLES_DROPPED_COUNTER,
    SHARD_FOLD_COUNTER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import TraceBuffer

#: Counts completed profiling sessions (see :mod:`repro.obs.profile`).
PROFILE_RUNS_COUNTER = "repro_profile_runs_total"

_active: Optional[MetricsRegistry] = None
_event_log: Optional[StructuredLog] = None
_trace_buffer: Optional[TraceBuffer] = None

#: Mode flags mirroring the private state above, refreshed by
#: :func:`enable`/:func:`disable` (the only two mode transitions).
#: The hottest guards read these as plain module attributes —
#: ``if obs.ACTIVE:`` — which is measurably cheaper in situ than a
#: function call; :func:`enabled`/:func:`tracing` stay as the stable
#: API for everything else.
ACTIVE: bool = False
TRACING: bool = False
#: Tracing *or* an event log: spans must be real objects, not fused
#: fast paths, because something downstream consumes them.
DETAILED: bool = False


def _refresh_flags() -> None:
    global ACTIVE, TRACING, DETAILED
    ACTIVE = _active is not None
    TRACING = ACTIVE and _trace_buffer is not None
    DETAILED = TRACING or _event_log is not None

#: Every live BoundMetric; enable()/disable() re-resolve them eagerly
#: so updates are a single delegation with no staleness check.
_handles: "weakref.WeakSet[BoundMetric]" = weakref.WeakSet()


def _rebind_handles() -> None:
    for handle in list(_handles):
        handle.resolve()


def enabled() -> bool:
    """Whether a live registry is collecting metrics right now."""
    return _active is not None


def tracing() -> bool:
    """Whether spans should record full trace trees right now.

    True only when collection is active *and* a :class:`TraceBuffer`
    was installed via ``enable(trace=...)`` — plain metric collection
    never pays the trace-id/contextvar cost.
    """
    return _active is not None and _trace_buffer is not None


def registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry, or the shared no-op one when disabled."""
    return _active if _active is not None else NULL_REGISTRY


def event_log() -> Optional[StructuredLog]:
    """The active structured-event sink, or None."""
    return _event_log


def trace_buffer() -> Optional[TraceBuffer]:
    """The active trace ring buffer, or None when tracing is off."""
    return _trace_buffer


def enable(
    registry: Optional[MetricsRegistry] = None,
    event_log: Optional[StructuredLog] = None,
    trace: Optional[TraceBuffer] = None,
) -> MetricsRegistry:
    """Activate metrics collection (idempotent; returns the registry).

    Passing a registry replaces any active one; passing none keeps an
    already-active registry or creates a fresh one.  The event log, if
    given, receives span and simulation events until :func:`disable`.
    Passing a :class:`TraceBuffer` additionally turns on distributed
    tracing: spans get trace/span ids, propagate parent context, and
    record into the buffer (served by ``/traces`` and
    :func:`~repro.obs.trace.format_trace_tree`).
    """
    global _active, _event_log, _trace_buffer
    if registry is not None:
        _active = registry
    elif _active is None:
        _active = MetricsRegistry()
    if event_log is not None:
        _event_log = event_log
    if trace is not None:
        _trace_buffer = trace
        # PR 3/4 convention: pre-register so the series exports at zero.
        _active.counter(
            "repro_traces_total",
            help="Traces started (root spans opened while tracing).",
        )
    # Telemetry-about-telemetry series export at zero from the start.
    _active.counter(
        SHARD_FOLD_COUNTER,
        help="Shard folds performed at metric exposition time.",
    )
    _active.counter(
        SAMPLES_DROPPED_COUNTER,
        help="Histogram observations batch-attributed by sampling.",
    )
    _active.counter(
        PROFILE_RUNS_COUNTER,
        help="Profiling sessions completed (cprofile or wall engine).",
    )
    _refresh_flags()
    _rebind_handles()
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Deactivate collection; closes the event log if one was attached.

    Returns the registry that was active (still readable/exportable —
    deactivation stops *collection*, not access).  A trace buffer, like
    the registry, stays readable after deactivation but receives no
    further spans.
    """
    global _active, _event_log, _trace_buffer
    previous = _active
    _active = None
    _trace_buffer = None
    if _event_log is not None:
        _event_log.close()
        _event_log = None
    _refresh_flags()
    _rebind_handles()
    return previous


def counter(name: str, help: str = "", **labels: object) -> Counter:
    """Counter ``name`` on the active registry (no-op when disabled)."""
    return registry().counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels: object) -> Gauge:
    """Gauge ``name`` on the active registry (no-op when disabled)."""
    return registry().gauge(name, help, **labels)


def histogram(
    name: str,
    help: str = "",
    buckets: Optional[Sequence[float]] = None,
    sample_rate: Optional[int] = None,
    **labels: object,
) -> Histogram:
    """Histogram ``name`` on the active registry (no-op when disabled)."""
    return registry().histogram(name, help, buckets, sample_rate, **labels)


class BoundMetric:
    """A cached handle to one metric child, safe to create at import.

    Resolution (name validation, label sorting, family/child lookup)
    happens when the handle is created and again on every
    observability toggle — handles register in a module-level weak set
    and :func:`enable`/:func:`disable` re-resolve them eagerly — so
    hot-path updates are a plain delegation to the cached child with
    no staleness check at all.  While observability is disabled the
    cached child is the shared :data:`~repro.obs.metrics.NULL_METRIC`,
    so using a handle unconditionally is always safe — though hot
    paths keep the ``if obs.enabled():`` guard to skip even the
    delegation.
    """

    #: ``inc``/``dec``/``set``/``observe`` are *slots*, not methods:
    #: :meth:`resolve` assigns the child's bound methods directly, so a
    #: hot-path update is one call into the child with zero indirection.
    __slots__ = (
        "_kind", "_name", "_help", "_buckets", "_sample_rate", "_labels",
        "_child", "inc", "dec", "set", "observe", "observe_many",
        "__weakref__",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        sample_rate: Optional[int] = None,
        labels: Optional[Dict[str, object]] = None,
    ):
        self._kind = kind
        self._name = name
        self._help = help
        self._buckets = buckets
        self._sample_rate = sample_rate
        self._labels = labels or {}
        self._child = NULL_METRIC
        self.inc = NULL_METRIC.inc
        self.dec = NULL_METRIC.dec
        self.set = NULL_METRIC.set
        self.observe = NULL_METRIC.observe
        self.observe_many = NULL_METRIC.observe_many
        _handles.add(self)
        # Bind immediately so handles created while collection is
        # already active (spans, per-experiment cells) work without
        # waiting for the next toggle.
        self.resolve()

    @property
    def name(self) -> str:
        """The bound family name."""
        return self._name

    def resolve(self):
        """(Re)bind to the active registry's child and return it."""
        child = registry().bind(
            self._kind,
            self._name,
            self._help,
            buckets=self._buckets,
            sample_rate=self._sample_rate,
            labels=self._labels,
        )
        self._child = child
        # Lift the child's update methods onto the handle.  A method the
        # child lacks (a counter has no ``observe``) keeps the previous
        # no-op binding from NULL_METRIC — kinds never change, so a
        # stale binding can only ever be the null sink.
        for method in ("inc", "dec", "set", "observe", "observe_many"):
            bound = getattr(child, method, None)
            if bound is not None:
                setattr(self, method, bound)
        return child


def bind_counter(name: str, help: str = "", **labels: object) -> BoundMetric:
    """A cached counter handle (see :class:`BoundMetric`)."""
    return BoundMetric("counter", name, help, labels=labels)


def bind_gauge(name: str, help: str = "", **labels: object) -> BoundMetric:
    """A cached gauge handle (see :class:`BoundMetric`)."""
    return BoundMetric("gauge", name, help, labels=labels)


def bind_histogram(
    name: str,
    help: str = "",
    buckets: Optional[Sequence[float]] = None,
    sample_rate: Optional[int] = None,
    **labels: object,
) -> BoundMetric:
    """A cached histogram handle (see :class:`BoundMetric`)."""
    return BoundMetric(
        "histogram", name, help, buckets=buckets, sample_rate=sample_rate,
        labels=labels,
    )


class BoundCountAlias:
    """A counter family derived from a histogram's observation count.

    When a counter is an *identity* of a histogram's count — every
    served query observes exactly one latency, so
    ``repro_queries_total{kind}`` always equals
    ``repro_estimate_latency_seconds_count{kind}`` — maintaining both
    on the hot path pays twice to export one number.  This handle
    registers the counter family and attaches the histogram as its
    fold-time source: the counter's value is computed at scrape, the
    hot path only feeds the histogram, and sampling keeps the count
    exact.  Cross-process merges flow through the histogram (see
    :meth:`~repro.obs.metrics.MetricsRegistry.merge`).

    The handle is never touched on the hot path; it exists so the
    derived family is (re)attached on every observability toggle.
    """

    __slots__ = ("_name", "_help", "_labels", "_source", "__weakref__")

    def __init__(
        self,
        name: str,
        help: str,
        source: BoundMetric,
        labels: Optional[Dict[str, object]] = None,
    ):
        self._name = name
        self._help = help
        self._labels = labels or {}
        self._source = source
        _handles.add(self)
        self.resolve()

    @property
    def name(self) -> str:
        """The derived counter family's name."""
        return self._name

    def resolve(self):
        """(Re)attach the derived counter on the active registry."""
        histogram = self._source.resolve()
        child = registry().bind(
            "counter", self._name, self._help, labels=self._labels
        )
        if isinstance(child, Counter) and isinstance(histogram, Histogram):
            child._attach_histogram_count(histogram)
        return child


def bind_count_of(
    name: str,
    help: str,
    source: BoundMetric,
    **labels: object,
) -> BoundCountAlias:
    """Register counter ``name`` as the fold-time count of ``source``.

    ``source`` must be a bound histogram handle; the counter's exported
    value tracks its exact observation count with zero hot-path cost.
    """
    return BoundCountAlias(name, help, source, labels=labels)


class BoundBank:
    """A cached handle to one :class:`~repro.obs.metrics.CounterBank`.

    The fastest instrumentation shape for sites that bump several
    series per event: ``cell()`` (rebound on every observability
    toggle, like :class:`BoundMetric`) fetches the calling thread's
    bank cell, and each series is then a plain attribute add::

        _INGEST = obs.bind_bank("server_ingest", {
            "ingested": ("counter", "repro_records_ingested_total", "...", None),
            "resident_bits": ("gauge", "repro_store_bits", "...", None),
        })
        ...
        if obs.enabled():
            cell = _INGEST.cell()
            cell.ingested += 1
            cell.resident_bits += record.size

    While disabled, ``cell()`` hands out a shared write-absorbing
    dummy, so unguarded use is safe too.
    """

    __slots__ = ("_name", "_fields", "cell", "__weakref__")

    def __init__(
        self,
        name: str,
        fields: Dict[str, Tuple[str, str, str, Optional[Dict[str, object]]]],
    ):
        self._name = name
        self._fields = dict(fields)
        _handles.add(self)
        self.resolve()

    @property
    def name(self) -> str:
        """The bank's registry key."""
        return self._name

    def resolve(self):
        """(Re)bind to the active registry's bank and return it."""
        bank = registry().bank(self._name, self._fields)
        self.cell = bank.cell
        return bank


def bind_bank(
    name: str,
    fields: Dict[str, Tuple[str, str, str, Optional[Dict[str, object]]]],
) -> BoundBank:
    """A cached multi-series bank handle (see :class:`BoundBank`)."""
    return BoundBank(name, fields)
