"""The process-global observability switch.

Instrumentation throughout the library funnels through this module.
By default nothing is active: :func:`enabled` returns False and the
metric accessors hand out shared no-op objects, so the hot paths
(`receive_record`, joins, expansions, encounters) pay only a guard —
one function call and a ``None`` comparison.  Tier-1 behaviour and
timings are therefore unchanged until someone opts in:

>>> from repro.obs import runtime
>>> registry = runtime.enable()
>>> runtime.counter("repro_demo_total").inc()
>>> registry.get("repro_demo_total") is not None
True
>>> _ = runtime.disable()
>>> runtime.enabled()
False

The canonical instrumentation idiom is::

    from repro.obs import runtime as obs
    ...
    if obs.enabled():
        obs.counter("repro_things_total", kind="x").inc()

The ``if`` guard keeps the disabled cost to the single ``enabled()``
call (no label kwargs are even packed); calling the accessors without
the guard is also safe — they return no-op metrics when disabled.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.obs.events import StructuredLog
from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import TraceBuffer

_active: Optional[MetricsRegistry] = None
_event_log: Optional[StructuredLog] = None
_trace_buffer: Optional[TraceBuffer] = None


def enabled() -> bool:
    """Whether a live registry is collecting metrics right now."""
    return _active is not None


def tracing() -> bool:
    """Whether spans should record full trace trees right now.

    True only when collection is active *and* a :class:`TraceBuffer`
    was installed via ``enable(trace=...)`` — plain metric collection
    never pays the trace-id/contextvar cost.
    """
    return _active is not None and _trace_buffer is not None


def registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry, or the shared no-op one when disabled."""
    return _active if _active is not None else NULL_REGISTRY


def event_log() -> Optional[StructuredLog]:
    """The active structured-event sink, or None."""
    return _event_log


def trace_buffer() -> Optional[TraceBuffer]:
    """The active trace ring buffer, or None when tracing is off."""
    return _trace_buffer


def enable(
    registry: Optional[MetricsRegistry] = None,
    event_log: Optional[StructuredLog] = None,
    trace: Optional[TraceBuffer] = None,
) -> MetricsRegistry:
    """Activate metrics collection (idempotent; returns the registry).

    Passing a registry replaces any active one; passing none keeps an
    already-active registry or creates a fresh one.  The event log, if
    given, receives span and simulation events until :func:`disable`.
    Passing a :class:`TraceBuffer` additionally turns on distributed
    tracing: spans get trace/span ids, propagate parent context, and
    record into the buffer (served by ``/traces`` and
    :func:`~repro.obs.trace.format_trace_tree`).
    """
    global _active, _event_log, _trace_buffer
    if registry is not None:
        _active = registry
    elif _active is None:
        _active = MetricsRegistry()
    if event_log is not None:
        _event_log = event_log
    if trace is not None:
        _trace_buffer = trace
        # PR 3/4 convention: pre-register so the series exports at zero.
        _active.counter(
            "repro_traces_total",
            help="Traces started (root spans opened while tracing).",
        )
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Deactivate collection; closes the event log if one was attached.

    Returns the registry that was active (still readable/exportable —
    deactivation stops *collection*, not access).  A trace buffer, like
    the registry, stays readable after deactivation but receives no
    further spans.
    """
    global _active, _event_log, _trace_buffer
    previous = _active
    _active = None
    _trace_buffer = None
    if _event_log is not None:
        _event_log.close()
        _event_log = None
    return previous


def counter(name: str, help: str = "", **labels: object) -> Counter:
    """Counter ``name`` on the active registry (no-op when disabled)."""
    return registry().counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels: object) -> Gauge:
    """Gauge ``name`` on the active registry (no-op when disabled)."""
    return registry().gauge(name, help, **labels)


def histogram(
    name: str,
    help: str = "",
    buckets: Optional[Sequence[float]] = None,
    **labels: object,
) -> Histogram:
    """Histogram ``name`` on the active registry (no-op when disabled)."""
    return registry().histogram(name, help, buckets, **labels)
