"""Exporters: Prometheus text exposition, JSON snapshot, human report.

Three views over one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`to_prometheus` — the text exposition format scraped by
  Prometheus (version 0.0.4): ``# HELP``/``# TYPE`` headers, one
  sample per line, histograms as cumulative ``_bucket``/``_sum``/
  ``_count`` series;
* :func:`to_json` — a faithful machine-readable snapshot;
* :func:`format_report` — a one-screen summary for humans at the end
  of a CLI run.

:func:`parse_prometheus` parses the exposition back into samples; the
test suite round-trips through it, and it doubles as a tiny scrape
client for ad-hoc tooling.  :func:`registry_from_prometheus` goes one
step further and rebuilds a full :class:`MetricsRegistry` — histogram
``_bucket``/``_sum``/``_count`` series are reassembled into real
:class:`~repro.obs.metrics.Histogram` children, so a scraped worker
exposition can be :meth:`~repro.obs.metrics.MetricsRegistry.merge`\\ d
into another registry losslessly.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Mapping, Tuple

from repro.exceptions import ObservabilityError
from repro.obs.metrics import Histogram, LabelKey, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help_text:
            lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.children():
            labels = dict(key)
            if family.kind == "histogram":
                assert isinstance(child, Histogram)
                # One fold serves buckets, sum and count alike: reading
                # them as separate properties during concurrent writes
                # could publish a +Inf bucket disagreeing with _count.
                pairs, sum_, count = child.exposition()
                for upper, cumulative_count in pairs:
                    le = "+Inf" if math.isinf(upper) else _format_value(upper)
                    label_text = _format_labels(labels, extra=f'le="{le}"')
                    lines.append(
                        f"{family.name}_bucket{label_text} {cumulative_count}"
                    )
                label_text = _format_labels(labels)
                lines.append(
                    f"{family.name}_sum{label_text} {_format_value(sum_)}"
                )
                lines.append(f"{family.name}_count{label_text} {count}")
            else:
                label_text = _format_labels(labels)
                value = child.value  # type: ignore[attr-defined]
                lines.append(f"{family.name}{label_text} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> Dict[Tuple[str, LabelKey], float]:
    """Parse exposition text into ``{(name, label_key): value}``.

    Histogram series come back under their expanded names
    (``..._bucket`` with its ``le`` label, ``..._sum``, ``..._count``).
    Raises :class:`ObservabilityError` on a malformed sample line.
    """
    samples: Dict[Tuple[str, LabelKey], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"unparseable exposition line: {line!r}")
        label_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (name, _unescape_label_value(value))
                for name, value in _LABEL_PAIR_RE.findall(label_text)
            )
        )
        samples[(match.group("name"), labels)] = _parse_value(
            match.group("value")
        )
    return samples


_HEADER_RE = re.compile(
    r"^#\s+(?P<kind>HELP|TYPE)\s+(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\s+(?P<rest>.*))?$"
)

#: Histogram series suffixes in the exposition format.
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def registry_from_prometheus(text: str) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from exposition text.

    The inverse of :func:`to_prometheus`, using the ``# TYPE`` headers
    to reassemble histograms from their ``_bucket``/``_sum``/``_count``
    series (``parse_prometheus`` deliberately stays flat for
    line-level assertions).  Round-trips exactly:
    ``to_prometheus(registry_from_prometheus(doc)) == doc`` for any
    document produced by :func:`to_prometheus`.

    Raises :class:`ObservabilityError` on samples without a ``# TYPE``
    header (the type is what decides how series recombine), on
    non-monotone cumulative buckets, and on ``_count`` disagreeing
    with the ``+Inf`` bucket.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    scalars: List[Tuple[str, Dict[str, str], float]] = []
    hist_parts: Dict[Tuple[str, LabelKey], dict] = {}

    def _base_histogram(name: str) -> Tuple[str, str]:
        for suffix in _HIST_SUFFIXES:
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base, suffix
        return "", ""

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            header = _HEADER_RE.match(line)
            if header is None:
                continue  # a plain comment
            if header.group("kind") == "TYPE":
                types[header.group("name")] = (header.group("rest") or "").strip()
            else:
                helps[header.group("name")] = header.group("rest") or ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        label_text = match.group("labels") or ""
        labels = {
            lname: _unescape_label_value(lvalue)
            for lname, lvalue in _LABEL_PAIR_RE.findall(label_text)
        }
        value = _parse_value(match.group("value"))
        base, suffix = _base_histogram(name)
        if base:
            le = labels.pop("le", None) if suffix == "_bucket" else None
            key = (base, tuple(sorted(labels.items())))
            part = hist_parts.setdefault(
                key, {"labels": labels, "buckets": [], "sum": 0.0, "count": 0}
            )
            if suffix == "_bucket":
                if le is None:
                    raise ObservabilityError(
                        f"histogram bucket sample without le label: {line!r}"
                    )
                part["buckets"].append((_parse_value(le), int(value)))
            elif suffix == "_sum":
                part["sum"] = value
            else:
                part["count"] = int(value)
            continue
        kind = types.get(name)
        if kind is None:
            raise ObservabilityError(
                f"sample {name!r} has no # TYPE header; cannot rebuild"
            )
        scalars.append((name, labels, value))

    registry = MetricsRegistry()
    for name, labels, value in scalars:
        kind = types[name]
        if kind == "counter":
            registry.counter(name, helps.get(name, ""), **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, helps.get(name, ""), **labels).set(value)
        else:
            raise ObservabilityError(
                f"metric {name!r} has unsupported type {kind!r}"
            )
    for (name, _), part in hist_parts.items():
        pairs = sorted(part["buckets"], key=lambda item: item[0])
        if not pairs or not math.isinf(pairs[-1][0]):
            raise ObservabilityError(
                f"histogram {name!r} exposition lacks a +Inf bucket"
            )
        snapshot_buckets = [
            ["+Inf" if math.isinf(le) else le, cum] for le, cum in pairs
        ]
        finite = tuple(le for le, _ in pairs if not math.isinf(le))
        registry.histogram(
            name,
            helps.get(name, ""),
            buckets=finite or None,
            **part["labels"],
        ).merge_cumulative(snapshot_buckets, part["sum"], part["count"])
    return registry


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Render the registry as a JSON document (stable key order)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True) + "\n"


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels.items())
    return "{" + inner + "}"


def _human_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    if float(value) != int(value):
        return f"{value:.3g}"
    return _format_value(value)


def _human_seconds(value: float) -> str:
    if math.isnan(value):
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def format_report(registry: MetricsRegistry, title: str = "run report") -> str:
    """A one-screen human summary of every collected metric.

    Counters and gauges print as aligned name/value lines; histograms
    add count, mean, and coarse p50/p95/max estimates (bucket upper
    bounds).  Time-like histograms (name ending in ``_seconds``) are
    shown in human units.
    """
    rows: List[Tuple[str, str]] = []
    histogram_rows: List[Tuple[str, str]] = []
    for family in registry.families():
        for key, child in family.children():
            name = f"{family.name}{_label_suffix(dict(key))}"
            if family.kind == "histogram":
                assert isinstance(child, Histogram)
                count = child.count
                seconds = family.name.endswith("_seconds")
                fmt = _human_seconds if seconds else _human_count
                mean = child.sum / count if count else math.nan
                summary = (
                    f"n={count}  mean={fmt(mean)}  "
                    f"p50<={fmt(child.quantile(0.5))}  "
                    f"p95<={fmt(child.quantile(0.95))}"
                )
                histogram_rows.append((name, summary))
            else:
                rows.append((name, _human_count(child.value)))  # type: ignore[attr-defined]
    if not rows and not histogram_rows:
        return f"{title}: no metrics collected"
    width = max(len(name) for name, _ in rows + histogram_rows)
    lines = [title, "-" * max(len(title), 24)]
    lines += [f"{name.ljust(width)}  {value}" for name, value in rows]
    lines += [f"{name.ljust(width)}  {value}" for name, value in histogram_rows]
    return "\n".join(lines)
