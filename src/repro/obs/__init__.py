"""repro.obs — runtime observability for the measurement pipeline.

The paper's system measures traffic; this package measures the
measurer.  It provides:

* :mod:`repro.obs.metrics` — a dependency-free, thread-safe metrics
  registry (counters, gauges, log-bucketed histograms);
* :mod:`repro.obs.spans` — scoped timers feeding a duration histogram
  and, optionally, a structured JSONL event log;
* :mod:`repro.obs.events` — the :class:`StructuredLog` JSONL sink;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON
  snapshots, and a one-screen human report;
* :mod:`repro.obs.trace` — distributed tracing: trace/span ids,
  contextvar propagation, the :class:`TraceBuffer` ring, and
  :func:`format_trace_tree` critical-path rendering;
* :mod:`repro.obs.httpd` — a stdlib background HTTP server exposing
  ``/metrics``, ``/healthz``, ``/traces``, ``/profile``, and
  ``/shards`` while a run executes;
* :mod:`repro.obs.cluster` — the distributed telemetry plane: the
  worker-side :class:`TelemetryBuffer` export queue and the
  front-door :class:`ClusterTelemetry` collector that merges shard
  spans, bindings, and metrics into one coherent domain;
* :mod:`repro.obs.profile` — cProfile/wall-sampling hotspot capture
  with per-subsystem aggregation (drives ``--profile``);
* :mod:`repro.obs.runtime` — the process-global enable/disable switch
  and the :class:`~repro.obs.runtime.BoundMetric` hot-path handles.

Nothing is collected by default: instrumentation throughout the
library is guarded by :func:`~repro.obs.runtime.enabled` and costs a
single no-op check until a registry is activated, keeping the paper
reproduction paths byte- and timing-identical.

Quickstart::

    from repro import obs

    registry = obs.enable()
    ...  # run simulations, serve queries
    print(obs.format_report(registry))
    open("metrics.prom", "w").write(obs.to_prometheus(registry))
    obs.disable()

The metric catalog (names, types, labels, units) lives in
``docs/observability.md``.
"""

from repro.obs.cluster import (
    ClusterTelemetry,
    TelemetryBuffer,
    register_cluster_metrics,
)
from repro.obs.events import StructuredLog, memory_log
from repro.obs.export import (
    format_report,
    parse_prometheus,
    registry_from_prometheus,
    to_json,
    to_prometheus,
)
from repro.obs.httpd import MetricsServer
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    POW2_BUCKETS,
    SAMPLES_DROPPED_COUNTER,
    SHARD_FOLD_COUNTER,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    log_buckets,
)
from repro.obs.profile import (
    Hotspot,
    ProfileReport,
    Profiler,
    last_report,
)
from repro.obs.runtime import (
    PROFILE_RUNS_COUNTER,
    BoundMetric,
    bind_counter,
    bind_gauge,
    bind_histogram,
    counter,
    disable,
    enable,
    enabled,
    event_log,
    gauge,
    histogram,
    registry,
    trace_buffer,
    tracing,
)
from repro.obs.spans import SPAN_HISTOGRAM, Span, add_link, current_span, span
from repro.obs.trace import (
    SpanRecord,
    TraceBuffer,
    TraceContext,
    format_trace_tree,
)

__all__ = [
    "BoundMetric",
    "ClusterTelemetry",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "Hotspot",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_REGISTRY",
    "NullRegistry",
    "POW2_BUCKETS",
    "PROFILE_RUNS_COUNTER",
    "ProfileReport",
    "Profiler",
    "SAMPLES_DROPPED_COUNTER",
    "SHARD_FOLD_COUNTER",
    "SIZE_BUCKETS",
    "SPAN_HISTOGRAM",
    "Span",
    "SpanRecord",
    "StructuredLog",
    "TelemetryBuffer",
    "TraceBuffer",
    "TraceContext",
    "add_link",
    "bind_counter",
    "bind_gauge",
    "bind_histogram",
    "counter",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "event_log",
    "format_report",
    "format_trace_tree",
    "gauge",
    "histogram",
    "last_report",
    "log_buckets",
    "memory_log",
    "parse_prometheus",
    "register_cluster_metrics",
    "registry",
    "registry_from_prometheus",
    "span",
    "to_json",
    "to_prometheus",
    "trace_buffer",
    "tracing",
]
