"""Live metrics endpoint: a stdlib-only background HTTP server.

PR 1's exporters write a static file at process exit, which is useless
while a long ``faultgrid`` sweep is still running.  This module serves
the *live* registry instead:

* ``GET /metrics`` — Prometheus text exposition (0.0.4) of the active
  registry, scrapeable mid-run;
* ``GET /healthz`` — JSON liveness: status, uptime, metric-family and
  resident-trace counts;
* ``GET /traces`` — recent traces from the installed
  :class:`~repro.obs.trace.TraceBuffer` as JSON, newest first
  (``?limit=N`` caps the count);
* ``GET /profile`` — the most recent profiling report from
  :mod:`repro.obs.profile` as JSON (``?format=text`` for the human
  rendering, ``?top=N`` to widen the hotspot list); 404 until a
  profile has run;
* ``GET /shards`` — per-shard liveness/health of an attached sharded
  tier (404 unless the server was built with ``cluster=...``).

With a :class:`~repro.obs.cluster.ClusterTelemetry` attached,
``/metrics`` serves the *cluster-merged* view (front door plus every
shard's registry, refreshed on scrape within the collector's
staleness bound) and ``/traces`` refreshes shard telemetry first so
cross-process traces render connected.

Everything is standard library (``http.server``): no new dependencies,
one daemon thread, bound to localhost by default.  Start with port 0
to let the OS pick a free port — :meth:`MetricsServer.start` returns
the bound port, and the CLI prints it so scripts can scrape it.

>>> from repro import obs
>>> from repro.obs.httpd import MetricsServer
>>> registry = obs.enable()
>>> server = MetricsServer(registry=registry)
>>> port = server.start()
>>> # ... scrape http://127.0.0.1:{port}/metrics ...
>>> server.stop()
>>> _ = obs.disable()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs import export, profile, runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuffer

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The endpoints this server knows about (pre-registered scrape labels).
ENDPOINTS = ("/metrics", "/healthz", "/traces", "/profile", "/shards")


class MetricsServer:
    """Background HTTP server exposing the live registry and traces.

    ``registry``/``traces`` default to whatever is active in
    :mod:`repro.obs.runtime` *at request time*, so a server started
    before ``obs.enable()`` serves the right registry afterwards.

    ``cluster`` (a :class:`~repro.obs.cluster.ClusterTelemetry`)
    upgrades the server to the tier-wide view: merged ``/metrics``,
    telemetry-refreshed ``/traces``, and a live ``/shards`` endpoint.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        traces: Optional[TraceBuffer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cluster=None,
    ):
        self._registry = registry
        self._traces = traces
        self._cluster = cluster
        self._host = host
        self._port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Resolution: explicit wiring beats the runtime globals.
    # ------------------------------------------------------------------

    def resolve_registry(self):
        """The registry requests read (falls back to the runtime one)."""
        if self._registry is not None:
            return self._registry
        return runtime.registry()

    def resolve_traces(self) -> Optional[TraceBuffer]:
        """The trace buffer requests read, or None."""
        if self._traces is not None:
            return self._traces
        return runtime.trace_buffer()

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self._port}"

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0.0 when not running)."""
        if self._started_at == 0.0:
            return 0.0
        return time.time() - self._started_at

    def start(self) -> int:
        """Bind, spawn the serving thread, and return the bound port.

        Idempotent: calling start on a running server returns the
        existing port.  Pre-registers the per-endpoint scrape counter
        so all three series export at zero before the first request.
        """
        if self._httpd is not None:
            return self._port
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002
                pass  # never write scrape noise to stderr

            def _send(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802
                parsed = urlparse(self.path)
                path = parsed.path.rstrip("/") or "/"
                if path == "/metrics":
                    server._count_scrape("/metrics")
                    # Exposition boundary: account the shard fold and
                    # any newly dropped histogram samples *before*
                    # rendering, so the scrape reports itself.
                    server.resolve_registry().account_exposition()
                    cluster = server._cluster
                    if cluster is not None:
                        cluster.refresh()
                        exported = cluster.merged_registry()
                    else:
                        exported = server.resolve_registry()
                    body = export.to_prometheus(exported).encode("utf-8")
                    self._send(200, PROMETHEUS_CONTENT_TYPE, body)
                elif path == "/healthz":
                    server._count_scrape("/healthz")
                    traces = server.resolve_traces()
                    payload = {
                        "status": "ok",
                        "uptime_seconds": server.uptime(),
                        "metric_families": len(
                            server.resolve_registry().families()
                        ),
                        "traces": len(traces) if traces is not None else 0,
                        "tracing": traces is not None,
                    }
                    self._send(
                        200,
                        "application/json",
                        json.dumps(payload).encode("utf-8"),
                    )
                elif path == "/traces":
                    server._count_scrape("/traces")
                    if server._cluster is not None:
                        # Pull shard spans in first, so a trace whose
                        # tail lives in a worker renders connected.
                        server._cluster.refresh()
                    traces = server.resolve_traces()
                    limit = None
                    query = parse_qs(parsed.query)
                    if "limit" in query:
                        try:
                            limit = int(query["limit"][0])
                        except ValueError:
                            limit = None
                    payload = {
                        "traces": (
                            traces.to_payloads(limit)
                            if traces is not None
                            else []
                        ),
                    }
                    self._send(
                        200,
                        "application/json",
                        json.dumps(payload).encode("utf-8"),
                    )
                elif path == "/profile":
                    server._count_scrape("/profile")
                    report = profile.last_report()
                    if report is None:
                        self._send(
                            404,
                            "text/plain; charset=utf-8",
                            b"no profile captured yet; run with --profile\n",
                        )
                        return
                    query = parse_qs(parsed.query)
                    top = 20
                    if "top" in query:
                        try:
                            top = max(1, int(query["top"][0]))
                        except ValueError:
                            top = 20
                    if query.get("format", [""])[0] == "text":
                        self._send(
                            200,
                            "text/plain; charset=utf-8",
                            report.format_text(top).encode("utf-8"),
                        )
                    else:
                        self._send(
                            200,
                            "application/json",
                            report.to_json(top).encode("utf-8"),
                        )
                elif path == "/shards":
                    server._count_scrape("/shards")
                    cluster = server._cluster
                    if cluster is None:
                        self._send(
                            404,
                            "text/plain; charset=utf-8",
                            b"no sharded tier attached to this endpoint\n",
                        )
                        return
                    cluster.refresh()
                    payload = {
                        "shards": cluster.shards_payload(),
                        "staleness_seconds": cluster.staleness(),
                    }
                    self._send(
                        200,
                        "application/json",
                        json.dumps(payload).encode("utf-8"),
                    )
                else:
                    self._send(
                        404,
                        "text/plain; charset=utf-8",
                        b"not found; try /metrics, /healthz, /traces, "
                        b"/profile, /shards\n",
                    )

        self._httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        self._httpd.daemon_threads = True
        self._port = self._httpd.server_address[1]
        self._started_at = time.time()
        for endpoint in ENDPOINTS:
            self.resolve_registry().counter(
                "repro_httpd_scrapes_total",
                help="HTTP requests served by the live metrics endpoint.",
                endpoint=endpoint,
            )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self._port

    def _count_scrape(self, endpoint: str) -> None:
        # Safe with a NullRegistry: the counter call is then a no-op.
        self.resolve_registry().counter(
            "repro_httpd_scrapes_total",
            help="HTTP requests served by the live metrics endpoint.",
            endpoint=endpoint,
        ).inc()

    def stop(self) -> None:
        """Shut down the server and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
        self._started_at = 0.0

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
