"""repro — persistent traffic measurement through V2I communications.

A full reproduction of *"Persistent Traffic Measurement Through
Vehicle-to-Infrastructure Communications"* (Huang, Sun, Chen, Xu,
Zhou — IEEE ICDCS 2017): privacy-preserving bitmap traffic records,
the point and point-to-point persistent-traffic estimators, the
privacy analysis, the evaluation workloads (Sioux Falls + synthetic),
and an end-to-end discrete-event simulation of the V2I protocol.

Quickstart
----------
>>> import numpy as np
>>> from repro import (
...     Bitmap, KeyGenerator, PointPersistentEstimator,
...     VehicleEncoder, VehiclePopulation, bitmap_size_for_volume)
>>> keygen = KeyGenerator(master_seed=7, s=3)
>>> encoder = VehicleEncoder()
>>> rng = np.random.default_rng(0)
>>> commuters = VehiclePopulation.random(400, keygen, rng)
>>> records = []
>>> for day in range(5):
...     bitmap = Bitmap(bitmap_size_for_volume(5000, 2))
...     commuters.encode_into(bitmap, location=12, encoder=encoder)
...     transients = VehiclePopulation.random(4600, keygen, rng)
...     transients.encode_into(bitmap, location=12, encoder=encoder)
...     records.append(bitmap)
>>> estimate = PointPersistentEstimator().estimate(records)
>>> 250 < estimate.estimate < 550
True

See ``examples/`` for runnable scenarios and ``python -m repro`` to
regenerate every table and figure of the paper.
"""

from repro.core.baselines import DirectAndBenchmark, ExactIdCounter
from repro.core.multisplit import MultiSplitPointEstimator
from repro.core.path import PathPersistentEstimator
from repro.core.point import PointPersistentEstimator, estimate_point_persistent
from repro.core.point_to_point import (
    PointToPointPersistentEstimator,
    estimate_point_to_point_persistent,
)
from repro.core.results import PointEstimate, PointToPointEstimate
from repro.crypto.keys import KeyGenerator
from repro.exceptions import (
    AuthenticationError,
    ConfigurationError,
    CoverageError,
    DataError,
    EstimationError,
    ProtocolError,
    ReproError,
    SaturatedBitmapError,
    SketchError,
    TransportError,
)
# Fault-plan types come from their submodules directly (not the
# repro.faults package root) so `import repro` stays light — the
# chaos harness pulls in the whole simulation stack.
from repro.faults.plan import FaultInjector, FaultPlan, OutageWindow
from repro.faults.transport import UploadTransport
from repro.rsu.record import TrafficRecord
from repro.rsu.unit import RoadSideUnit
from repro.server.central import CentralServer
from repro.server.degradation import (
    CoveragePolicy,
    CoverageReport,
    DegradedResult,
)
from repro.server.monitor import PersistenceMonitor
from repro.server.persistence import RecordArchive, RepairReport
from repro.server.queries import (
    PointPersistentQuery,
    PointToPointPersistentQuery,
    PointVolumeQuery,
)
from repro.sketch.bitmap import Bitmap
from repro.sketch.sizing import bitmap_size_for_volume
from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.identity import VehicleIdentity
from repro.vehicle.population import VehiclePopulation

__version__ = "1.0.0"

__all__ = [
    "AuthenticationError",
    "Bitmap",
    "CentralServer",
    "ConfigurationError",
    "CoverageError",
    "CoveragePolicy",
    "CoverageReport",
    "DataError",
    "DegradedResult",
    "DirectAndBenchmark",
    "EstimationError",
    "ExactIdCounter",
    "FaultInjector",
    "FaultPlan",
    "KeyGenerator",
    "MultiSplitPointEstimator",
    "PathPersistentEstimator",
    "PersistenceMonitor",
    "PointEstimate",
    "PointPersistentEstimator",
    "PointPersistentQuery",
    "PointToPointEstimate",
    "PointToPointPersistentEstimator",
    "PointToPointPersistentQuery",
    "OutageWindow",
    "PointVolumeQuery",
    "ProtocolError",
    "RecordArchive",
    "RepairReport",
    "ReproError",
    "RoadSideUnit",
    "SaturatedBitmapError",
    "SketchError",
    "TrafficRecord",
    "TransportError",
    "UploadTransport",
    "VehicleEncoder",
    "VehicleIdentity",
    "VehiclePopulation",
    "bitmap_size_for_volume",
    "estimate_point_persistent",
    "estimate_point_to_point_persistent",
    "__version__",
]
