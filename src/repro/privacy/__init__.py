"""Privacy analysis of the traffic-record design (Section V).

* :mod:`repro.privacy.analysis` — the closed-form noise probability
  ``p`` (Eq. 22), detection probability ``p'`` (Eq. 23), and the
  probabilistic noise-to-information ratio (Eq. 24), plus the
  asymptotic forms the paper tabulates in Table II.
* :mod:`repro.privacy.attack` — an *empirical* tracking attack that
  plays the adversary of Section V against actual bitmaps and
  measures p and p' by simulation, validating the analysis.
"""

from repro.privacy.analysis import (
    asymptotic_noise_probability,
    asymptotic_noise_to_information_ratio,
    detection_probability,
    noise_probability,
    noise_to_information_ratio,
)
from repro.privacy.attack import TrackingAttack, TrackingAttackResult

__all__ = [
    "TrackingAttack",
    "TrackingAttackResult",
    "asymptotic_noise_probability",
    "asymptotic_noise_to_information_ratio",
    "detection_probability",
    "noise_probability",
    "noise_to_information_ratio",
]
