"""Closed-form privacy metrics (Section V, Eqs. 22–24).

The threat: the adversary learns (by external means) that vehicle
``v`` transmitted index ``i`` at location ``L``, and checks whether
bit ``i`` is also set in the bitmap of another location ``L'``.

* ``p`` — probability the bit is set by *other* vehicles even though
  ``v`` never passed ``L'``: the *noise* (Eq. 22).
* ``p'`` — probability the bit is set when ``v`` did pass ``L'``; the
  vehicle contributes ``1/s`` on top of the noise (Eq. 23).
* ``p / (p' - p)`` — the probabilistic noise-to-information ratio
  (Eq. 24); at least 1 is wanted, larger is better.

Table II evaluates these in the load-factor limit: with ``m' = f·n'``
and ``n'`` large, ``p → 1 - e^{-1/f}`` and the ratio → ``s·(e^{1/f}-1)``.
Both the finite and asymptotic forms are provided; the experiment
harness reports the asymptotic ones, which is what the paper's Table II
contains (its values match ``s·(e^{1/f}-1)`` to the printed precision).
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _check_s(s: int) -> int:
    if int(s) < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    return int(s)


def noise_probability(n_prime: float, m_prime: int) -> float:
    """Eq. 22: ``p = 1 - (1 - 1/m')^{n'}``.

    The chance that traffic at ``L'`` sets the watched bit even though
    the tracked vehicle never went there.
    """
    if m_prime < 2:
        raise ConfigurationError(f"bitmap size m' must be >= 2, got {m_prime}")
    if n_prime < 0:
        raise ConfigurationError(f"traffic volume n' must be >= 0, got {n_prime}")
    return 1.0 - (1.0 - 1.0 / m_prime) ** n_prime


def detection_probability(p: float, s: int) -> float:
    """Eq. 23: ``p' = p + (1 - p)/s``.

    The chance the watched bit is set when the vehicle *did* pass
    ``L'``: the noise plus the vehicle's own ``1/s`` chance of picking
    the same representative bit it used at ``L``.
    """
    s = _check_s(s)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must lie in [0, 1], got {p}")
    return p + (1.0 - p) / s


def noise_to_information_ratio(n_prime: float, m_prime: int, s: int) -> float:
    """Eq. 24: ``p / (p' - p) = s·p / (1 - p)``."""
    s = _check_s(s)
    p = noise_probability(n_prime, m_prime)
    if p >= 1.0:
        return math.inf
    return s * p / (1.0 - p)


def asymptotic_noise_probability(load_factor: float) -> float:
    """Table II's ``p`` row: ``1 - e^{-1/f}`` (``m' = f·n'``, large n')."""
    if load_factor <= 0:
        raise ConfigurationError(f"load factor must be positive, got {load_factor}")
    return 1.0 - math.exp(-1.0 / load_factor)


def asymptotic_noise_to_information_ratio(s: int, load_factor: float) -> float:
    """Table II's body: ``s·(e^{1/f} - 1)``.

    Examples
    --------
    The paper's chosen operating point scores about 2 (Section VI-C):

    >>> round(asymptotic_noise_to_information_ratio(3, 2.0), 4)
    1.9462
    """
    s = _check_s(s)
    if load_factor <= 0:
        raise ConfigurationError(f"load factor must be positive, got {load_factor}")
    return s * (math.exp(1.0 / load_factor) - 1.0)
