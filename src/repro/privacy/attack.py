"""An empirical tracking attack validating the Section V analysis.

The adversary's play, simulated end to end:

1. vehicle ``v`` is externally associated with the index ``i`` it
   transmitted at location ``L`` (the paper's police-stop example);
2. the adversary obtains the bitmap ``B'`` of another location ``L'``
   and asserts "``v`` passed ``L'``" iff ``B'[i] = 1``.

Running many independent trials with and without ``v`` actually
passing ``L'`` measures the noise probability ``p`` and the detection
probability ``p'`` empirically; they should match Eqs. 22–23, and the
empirical noise-to-information ratio should match Eq. 24.  The
analysis assumes the two locations use equal bitmap sizes (the
adversary watches "the same index"); the attack therefore defaults to
``m = m'`` and the test suite checks agreement with the formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.keys import KeyGenerator
from repro.exceptions import ConfigurationError
from repro.sketch.bitmap import Bitmap
from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.population import VehiclePopulation


@dataclass(frozen=True)
class TrackingAttackResult:
    """Empirical privacy measurements from repeated attack trials.

    Attributes
    ----------
    empirical_p:
        Fraction of absent-vehicle trials where the watched bit was
        set anyway (false trace) — estimates Eq. 22's ``p``.
    empirical_p_prime:
        Fraction of present-vehicle trials where the watched bit was
        set — estimates Eq. 23's ``p'``.
    trials:
        Number of trials per arm.
    """

    empirical_p: float
    empirical_p_prime: float
    trials: int

    @property
    def empirical_ratio(self) -> float:
        """Empirical ``p / (p' - p)``; ``inf`` if no information leaked."""
        information = self.empirical_p_prime - self.empirical_p
        if information <= 0.0:
            return float("inf")
        return self.empirical_p / information


class TrackingAttack:
    """Simulates the Section V adversary against real bitmaps.

    Parameters
    ----------
    n_prime:
        Traffic volume at the watched location ``L'``.
    m_prime:
        Bitmap size at both locations (the analysis' setting).
    s:
        Representative-bit parameter of the deployment.
    seed:
        Randomness seed for reproducible attacks.
    """

    def __init__(self, n_prime: int, m_prime: int, s: int, seed: int = 0):
        if n_prime < 1:
            raise ConfigurationError(f"n' must be >= 1, got {n_prime}")
        if m_prime < 2:
            raise ConfigurationError(f"m' must be >= 2, got {m_prime}")
        self._n_prime = int(n_prime)
        self._m_prime = int(m_prime)
        self._keygen = KeyGenerator(master_seed=seed ^ 0x717AC3, s=s)
        self._encoder = VehicleEncoder()
        self._rng = np.random.default_rng(seed)

    def run(
        self, trials: int, location: int = 1, other_location: int = 2
    ) -> TrackingAttackResult:
        """Run ``trials`` independent attack trials per arm.

        Each trial draws a fresh target vehicle and fresh background
        traffic, builds the two bitmaps through the ordinary encoding
        path, and executes the adversary's check.
        """
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        false_traces = 0
        detections = 0
        for _ in range(trials):
            target = VehiclePopulation.random(1, self._keygen, self._rng)
            background = VehiclePopulation.random(
                self._n_prime, self._keygen, self._rng
            )
            # The index the adversary associated with the target at L.
            watched_index = int(
                target.encoding_indices(location, self._m_prime, self._encoder)[0]
            )

            # Arm 1 (noise): the target never passes L'.
            bitmap_absent = Bitmap(self._m_prime)
            background.encode_into(bitmap_absent, other_location, self._encoder)
            if bitmap_absent.get(watched_index):
                false_traces += 1

            # Arm 2 (detection): the target does pass L'.
            bitmap_present = Bitmap(self._m_prime)
            background.encode_into(bitmap_present, other_location, self._encoder)
            target.encode_into(bitmap_present, other_location, self._encoder)
            if bitmap_present.get(watched_index):
                detections += 1

        return TrackingAttackResult(
            empirical_p=false_traces / trials,
            empirical_p_prime=detections / trials,
            trials=trials,
        )
