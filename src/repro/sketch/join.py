"""Bitmap joins (Sections III-A and IV-A of the paper).

* :func:`and_join` — expand a group of bitmaps to a common (maximum)
  size and AND them.  Used within a single location to isolate bits
  that were one in *every* measurement period.
* :func:`split_and_join` — the two-subset construction of Section
  III-B: split the records into Π_a and Π_b, AND within each half to
  get ``E_a`` and ``E_b``, and AND those to get ``E_*``.
* :func:`or_join` — expand to a common size and OR.  Used at the second
  level between two locations (Section IV-A), where OR admits a
  closed-form estimator and AND does not.
* :func:`two_level_join` — the full point-to-point pipeline: AND per
  location, then expand the smaller result and OR across locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SketchError
from repro.obs import runtime as obs
from repro.sketch import backends
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import (
    apply_expanded_words,
    expand_to,
    expansion_factor,
    observe_expansion_group,
)


def _sizes(bitmaps: Sequence[Bitmap]) -> List[int]:
    if not bitmaps:
        raise SketchError("cannot join an empty collection of bitmaps")
    return [b.size for b in bitmaps]


def _common_size(sizes: Sequence[int], size: Optional[int] = None) -> int:
    largest = max(sizes)
    if size is None:
        return largest
    if int(size) < largest:
        raise SketchError(
            f"requested join size {size} is smaller than the largest "
            f"input bitmap ({largest})"
        )
    return int(size)


#: One bound bank for the join accounting (the op label is a closed
#: enum): each join bumps its per-op series and the shared bits series
#: through a single per-thread cell fetch.  ``and``/``or`` joins
#: performed inside ``split``/``two_level`` pipelines are counted
#: under their own op as well — the counters measure work done, not
#: top-level API calls.
_JOIN_HELP = "Bitmap joins performed."
_JOINS = obs.bind_bank(
    "sketch_joins",
    {
        "op_and": ("counter", "repro_joins_total", _JOIN_HELP, {"op": "and"}),
        "op_or": ("counter", "repro_joins_total", _JOIN_HELP, {"op": "or"}),
        "op_split": (
            "counter", "repro_joins_total", _JOIN_HELP, {"op": "split"},
        ),
        "op_two_level": (
            "counter", "repro_joins_total", _JOIN_HELP, {"op": "two_level"},
        ),
        "bits": (
            "counter",
            "repro_join_bits_processed_total",
            "Bitmap bits streamed through joins (size x inputs).",
            None,
        ),
    },
)


def _accumulate_join(
    op: np.ufunc, bitmaps: Sequence[Bitmap], size: int
) -> Bitmap:
    """AND/OR ``bitmaps`` into one freshly-allocated word accumulator.

    The first bitmap seeds the accumulator (word-tiled when smaller
    than ``size``); every further input is folded in place through the
    broadcast view of :func:`apply_expanded_words`, so no per-input
    expansion is ever materialized, no defensive copies are chained,
    and nothing round-trips through a bool array — every fold touches
    1/8th the bytes the seed's bool accumulator did.
    """
    first = bitmaps[0]
    factor = expansion_factor(first.size, size)
    # tile_words copies even at factor 1 — the one unavoidable copy.
    out = backends.tile_words(first._dense_words(), first.size, factor)
    for bitmap in bitmaps[1:]:
        apply_expanded_words(out, size, bitmap._dense_words(), bitmap.size, op)
    return Bitmap._adopt_words(size, out)


def and_join(bitmaps: Sequence[Bitmap], size: Optional[int] = None) -> Bitmap:
    """Expand all bitmaps to a common size and AND them together.

    This is the join of Section III-A: a one bit in the result means
    the aligned bit was one in every input bitmap, i.e. the bit *may*
    encode a common vehicle (or colliding transients).

    ``size`` optionally forces a larger (power-of-two) target than the
    inputs' maximum — callers composing joins at an outer common size
    (e.g. :func:`split_and_join`) use it to skip re-expansion.
    """
    sizes = _sizes(bitmaps)
    size = _common_size(sizes, size)
    if obs.ACTIVE:
        cell = _JOINS.cell()
        cell.op_and += 1
        cell.bits += size * len(sizes)
        if min(sizes) != size:
            observe_expansion_group(sizes, size)
    return _accumulate_join(np.bitwise_and, bitmaps, size)


def or_join(bitmaps: Sequence[Bitmap], size: Optional[int] = None) -> Bitmap:
    """Expand all bitmaps to a common size and OR them together."""
    sizes = _sizes(bitmaps)
    size = _common_size(sizes, size)
    if obs.ACTIVE:
        cell = _JOINS.cell()
        cell.op_or += 1
        cell.bits += size * len(sizes)
        if min(sizes) != size:
            observe_expansion_group(sizes, size)
    return _accumulate_join(np.bitwise_or, bitmaps, size)


@dataclass(frozen=True)
class SplitJoinResult:
    """The three bitmaps of Section III-B.

    Attributes
    ----------
    half_a:
        ``E_a`` — AND of the first ``ceil(t/2)`` expanded records.
    half_b:
        ``E_b`` — AND of the remaining records.
    joined:
        ``E_*`` — AND of ``E_a`` and ``E_b``.
    """

    half_a: Bitmap
    half_b: Bitmap
    joined: Bitmap

    @property
    def size(self) -> int:
        """The common (maximum) bitmap size ``m``."""
        return self.joined.size


def split_and_join(bitmaps: Sequence[Bitmap]) -> SplitJoinResult:
    """Perform the two-subset split-and-join of Section III-B.

    The records are split into Π_a (first ``ceil(t/2)``) and Π_b (the
    rest); each half is AND-joined after expansion to the global
    maximum size, and the two halves are AND-joined into ``E_*``.

    Requires at least two bitmaps so that both halves are non-empty.
    """
    if len(bitmaps) < 2:
        raise SketchError(
            f"split-and-join needs at least 2 traffic records, got {len(bitmaps)}"
        )
    sizes = _sizes(bitmaps)
    size = _common_size(sizes)
    if obs.ACTIVE:
        # Fused accounting for the split and both half-joins: one cell
        # fetch and one ratio group instead of three guarded blocks.
        # ``bits`` counts the split pass plus each half's AND work —
        # the same 2·size·t the two inner ``and_join`` calls would add.
        cell = _JOINS.cell()
        cell.op_split += 1
        cell.op_and += 2
        cell.bits += 2 * size * len(bitmaps)
        if min(sizes) != size:
            observe_expansion_group(sizes, size)
    midpoint = (len(bitmaps) + 1) // 2  # ceil(t/2), as in the paper
    half_a = _accumulate_join(np.bitwise_and, bitmaps[:midpoint], size)
    half_b = _accumulate_join(np.bitwise_and, bitmaps[midpoint:], size)
    return SplitJoinResult(half_a=half_a, half_b=half_b, joined=half_a & half_b)


@dataclass(frozen=True)
class TwoLevelJoinResult:
    """The bitmaps of the point-to-point pipeline (Section IV-A).

    Attributes
    ----------
    location_a:
        ``E_*`` — AND-join of the records at the first location
        (size ``m``, the smaller of the two).
    location_b:
        ``E'_*`` — AND-join of the records at the second location
        (size ``m'``, with ``m <= m'``).
    expanded_a:
        ``S_*`` — ``E_*`` expanded to ``m'``.
    joined:
        ``E''_*`` — OR of ``S_*`` and ``E'_*``.
    swapped:
        True when the caller's argument order was (larger, smaller)
        and the roles were swapped to satisfy ``m <= m'``.
    """

    location_a: Bitmap
    location_b: Bitmap
    expanded_a: Bitmap
    joined: Bitmap
    swapped: bool

    @property
    def size(self) -> int:
        """The larger bitmap size ``m'`` (size of the OR-join)."""
        return self.joined.size


def two_level_join(
    records_a: Sequence[Bitmap], records_b: Sequence[Bitmap]
) -> TwoLevelJoinResult:
    """Run the two-level expansion-and-join of Section IV-A.

    First level: AND-join the records within each location (after
    intra-location expansion).  Second level: expand the smaller
    AND-join to the larger size and OR the two together.

    The paper assumes w.l.o.g. ``m <= m'``; this function swaps the
    locations internally when needed and reports it via ``swapped`` so
    the estimator can keep its parameters straight.
    """
    if obs.ACTIVE:
        cell = _JOINS.cell()
        cell.op_two_level += 1
        cell.bits += max(
            _common_size(_sizes(records_a)), _common_size(_sizes(records_b))
        ) * (len(records_a) + len(records_b))
    return _assemble_two_level(and_join(records_a), and_join(records_b))


def two_level_join_from_joined(
    joined_a: Bitmap, joined_b: Bitmap
) -> TwoLevelJoinResult:
    """Second level only: OR two precomputed per-location AND-joins.

    The query-plan cache memoizes each location's first-level AND-join
    (``E_*``); this entry point runs just the cross-location expansion
    and OR on those, producing a result bit-identical to
    :func:`two_level_join` on the underlying records.
    """
    if obs.ACTIVE:
        cell = _JOINS.cell()
        cell.op_two_level += 1
        cell.bits += max(joined_a.size, joined_b.size) * 2
    return _assemble_two_level(joined_a, joined_b)


def _assemble_two_level(
    joined_a: Bitmap, joined_b: Bitmap
) -> TwoLevelJoinResult:
    swapped = joined_a.size > joined_b.size
    if swapped:
        joined_a, joined_b = joined_b, joined_a
    expanded_a = expand_to(joined_a, joined_b.size)
    return TwoLevelJoinResult(
        location_a=joined_a,
        location_b=joined_b,
        expanded_a=expanded_a,
        joined=expanded_a | joined_b,
        swapped=swapped,
    )
