"""The bitmap data structure underlying every traffic record.

The paper's traffic record is "a bitmap ``B`` of ``m`` bits" whose bits
are set by passing vehicles (Section II-D).  This module provides a
numpy-backed :class:`Bitmap` with the operations the rest of the system
needs: single and bulk bit setting, zero/one accounting, bitwise
AND/OR combination, and replication-based expansion.

The backing store is a ``numpy.ndarray`` of ``bool``.  For the sizes
the paper uses (up to 2^20 bits) this is both faster and simpler than a
packed representation, and the serialization layer
(:mod:`repro.sketch.serial`) packs to actual bits for transport.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from repro.exceptions import SketchError
from repro.sketch.sizing import is_power_of_two


class Bitmap:
    """A fixed-size bit array, the paper's traffic-record ``B``.

    Parameters
    ----------
    size:
        Number of bits ``m``.  Must be a positive integer.  The paper's
        sizing rule always produces powers of two; the class accepts any
        positive size but the expansion/join machinery requires powers
        of two and will raise :class:`SketchError` otherwise.
    bits:
        Optional initial content — anything convertible to a boolean
        numpy array of length ``size``.  When omitted, all bits start
        at zero (the state of a traffic record at the beginning of a
        measurement period).

    Examples
    --------
    >>> b = Bitmap(8)
    >>> b.set(3)
    >>> b.ones()
    1
    >>> b.zero_fraction()
    0.875
    """

    __slots__ = ("_bits",)

    def __init__(self, size: int, bits: Union[np.ndarray, Iterable[int], None] = None):
        if int(size) <= 0:
            raise SketchError(f"bitmap size must be positive, got {size}")
        size = int(size)
        if bits is None:
            self._bits = np.zeros(size, dtype=np.bool_)
        else:
            arr = np.asarray(bits, dtype=np.bool_)
            if arr.ndim != 1 or arr.shape[0] != size:
                raise SketchError(
                    f"initial bits must be a flat array of length {size}, "
                    f"got shape {arr.shape}"
                )
            self._bits = arr.copy()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, bits: np.ndarray) -> "Bitmap":
        """Wrap an existing boolean array (copied) into a bitmap."""
        arr = np.asarray(bits, dtype=np.bool_)
        return cls(arr.shape[0], arr)

    @classmethod
    def _adopt(cls, bits: np.ndarray) -> "Bitmap":
        """Wrap a freshly-allocated boolean array *without* copying.

        Internal: the caller transfers ownership of ``bits`` (a flat,
        non-empty ``bool_`` array nobody else mutates).  Used by the
        join accumulators to avoid a defensive copy per join.
        """
        bitmap = cls.__new__(cls)
        bitmap._bits = bits
        return bitmap

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitmap":
        """Create a bitmap of ``size`` bits with the given indices set.

        This is the bulk equivalent of an RSU processing a whole
        measurement period of vehicle encodings at once.
        """
        bitmap = cls(size)
        bitmap.set_many(indices)
        return bitmap

    def copy(self) -> "Bitmap":
        """Return an independent copy of this bitmap."""
        return Bitmap(self.size, self._bits)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of bits ``m`` in the bitmap."""
        return int(self._bits.shape[0])

    @property
    def bits(self) -> np.ndarray:
        """Read-only view of the underlying boolean array."""
        view = self._bits.view()
        view.flags.writeable = False
        return view

    @property
    def is_power_of_two_sized(self) -> bool:
        """Whether ``size`` is a power of two (required for joining)."""
        return is_power_of_two(self.size)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to one (the paper's ``B[h_v] = 1``)."""
        idx = int(index)
        if not 0 <= idx < self.size:
            raise SketchError(f"bit index {idx} out of range for size {self.size}")
        self._bits[idx] = True

    def set_many(
        self, indices: Iterable[int], *, assume_in_range: bool = False
    ) -> None:
        """Set every bit whose index appears in ``indices``.

        Duplicate indices are harmless (setting a set bit is a no-op),
        exactly as hash collisions are in the paper's encoding.

        ``assume_in_range=True`` skips the min/max range scan — an
        internal fast path for callers (the population encoder) whose
        indices are already reduced modulo ``size``.  Out-of-range
        indices then raise ``IndexError`` from numpy instead of
        :class:`SketchError`; negative ones silently wrap, so only pass
        it when the guarantee actually holds.
        """
        if isinstance(indices, np.ndarray):
            idx = indices
        else:
            # One-pass conversion; no intermediate Python list.
            idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if not assume_in_range:
            idx = idx.astype(np.int64, copy=False)
            if idx.min() < 0 or idx.max() >= self.size:
                raise SketchError(
                    f"bit indices must lie in [0, {self.size}), "
                    f"got range [{idx.min()}, {idx.max()}]"
                )
        self._bits[idx] = True

    def clear(self) -> None:
        """Reset every bit to zero (start of a new measurement period)."""
        self._bits[:] = False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def get(self, index: int) -> bool:
        """Return the value of the bit at ``index``."""
        idx = int(index)
        if not 0 <= idx < self.size:
            raise SketchError(f"bit index {idx} out of range for size {self.size}")
        return bool(self._bits[idx])

    def ones(self) -> int:
        """Number of bits that are one."""
        return int(np.count_nonzero(self._bits))

    def zeros(self) -> int:
        """Number of bits that are zero."""
        return self.size - self.ones()

    def one_fraction(self) -> float:
        """Fraction of bits that are one (the paper's ``V_1``)."""
        return self.ones() / self.size

    def zero_fraction(self) -> float:
        """Fraction of bits that are zero (the paper's ``V_0``)."""
        return self.zeros() / self.size

    def is_saturated(self) -> bool:
        """True when every bit is one — no counting information left."""
        return bool(self._bits.all())

    def is_empty(self) -> bool:
        """True when every bit is zero."""
        return not self._bits.any()

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def _check_same_size(self, other: "Bitmap", op: str) -> None:
        if not isinstance(other, Bitmap):
            raise SketchError(f"cannot {op} a Bitmap with {type(other).__name__}")
        if other.size != self.size:
            raise SketchError(
                f"cannot {op} bitmaps of different sizes "
                f"({self.size} vs {other.size}); expand first"
            )

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "AND")
        return Bitmap(self.size, self._bits & other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "OR")
        return Bitmap(self.size, self._bits | other._bits)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "XOR")
        return Bitmap(self.size, self._bits ^ other._bits)

    def __invert__(self) -> "Bitmap":
        return Bitmap(self.size, ~self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self._bits, other._bits))

    def __hash__(self) -> int:  # pragma: no cover - bitmaps are mutable
        raise TypeError("Bitmap is mutable and unhashable")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def expand(self, target_size: int) -> "Bitmap":
        """Replicate this bitmap until it reaches ``target_size`` bits.

        This is the paper's bitmap expansion (Fig. 2): the bitmap is
        tiled whole, which requires ``target_size`` to be an exact
        multiple (and, for correctness of the alignment property, both
        sizes to be powers of two).
        """
        from repro.sketch.expansion import expand_to

        return expand_to(self, target_size)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[bool]:
        return (bool(b) for b in self._bits)

    def __repr__(self) -> str:
        return f"Bitmap(size={self.size}, ones={self.ones()})"
