"""The bitmap data structure underlying every traffic record.

The paper's traffic record is "a bitmap ``B`` of ``m`` bits" whose bits
are set by passing vehicles (Section II-D).  This module provides a
:class:`Bitmap` with the operations the rest of the system needs:
single and bulk bit setting, zero/one accounting, bitwise AND/OR
combination, and replication-based expansion.

The representation is pluggable (see :mod:`repro.sketch.backends`):

* ``dense`` — packed ``uint64`` words, the default working form.
  AND/OR/XOR run as word ops over 1/8th the bytes of the seed's bool
  arrays, and counting uses hardware popcount where numpy offers it.
* ``sparse`` — sorted set-bit indices, for near-empty records.
* ``rle`` — run-length pairs, the cold-storage form.

Freshly-constructed empty bitmaps additionally *stage* in a mutable
bool array: scattering vehicle hashes into a byte-per-bit array is
several times faster than read-modify-write word scatters, so the RSU
encoding hot path mutates the stage and the bitmap packs itself into
words on first use as an operand (``words``/joins/serialization).
Staged bitmaps report ``backend_kind == "dense"`` — the stage is a
write buffer in front of the dense form, not a fourth representation.

Mutating a ``sparse`` or ``rle`` bitmap transparently promotes it to
``dense`` first; :meth:`Bitmap.compress` demotes to whichever
representation measures smallest for the actual bit content.  All
representations describe the identical bit string, so every estimator
is bit-for-bit unaffected by representation choice.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from repro.exceptions import SketchError
from repro.obs import runtime as obs
from repro.sketch import backends
from repro.sketch.backends import (
    DenseWordsRep,
    RunLengthRep,
    SparseBitsRep,
)
from repro.sketch.sizing import is_power_of_two

#: Destination-kind conversion counters, bound at import so the
#: families export at zero from the moment observability is enabled.
_REPR_CONVERSIONS = {
    kind: obs.bind_counter(
        "repro_bitmap_representation_total",
        help="Bitmap representation conversions by destination kind.",
        kind=kind,
    )
    for kind in ("dense", "sparse", "rle")
}

REPRESENTATION_KINDS = ("dense", "sparse", "rle")


class _StageRep:
    """Mutable bool staging buffer in front of the dense form.

    Only empty-constructed bitmaps get one; it exists because bulk
    index scatters (``bits[idx] = True``) into a byte-per-bit array
    beat ``np.bitwise_or.at`` word scatters by ~5x at production
    sizes.  The first packed-word consumer swaps it for
    :class:`~repro.sketch.backends.DenseWordsRep`.
    """

    kind = "stage"
    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        self.bits = bits

    def nbytes(self) -> int:
        return int(self.bits.nbytes)

    def copy(self) -> "_StageRep":
        return _StageRep(self.bits.copy())

    def to_words(self, size: int) -> np.ndarray:
        return backends.pack_bool(self.bits)

    def popcount(self, size: int) -> int:
        return int(np.count_nonzero(self.bits))

    def get(self, size: int, index: int) -> bool:
        return bool(self.bits[index])


def _note_conversion(kind: str) -> None:
    if obs.ACTIVE:
        _REPR_CONVERSIONS[kind].inc()


class Bitmap:
    """A fixed-size bit array, the paper's traffic-record ``B``.

    Parameters
    ----------
    size:
        Number of bits ``m``.  Must be a positive integer.  The paper's
        sizing rule always produces powers of two; the class accepts any
        positive size but the expansion/join machinery requires powers
        of two and will raise :class:`SketchError` otherwise.
    bits:
        Optional initial content — anything convertible to a boolean
        numpy array of length ``size``.  When omitted, all bits start
        at zero (the state of a traffic record at the beginning of a
        measurement period).

    Examples
    --------
    >>> b = Bitmap(8)
    >>> b.set(3)
    >>> b.ones()
    1
    >>> b.zero_fraction()
    0.875
    """

    __slots__ = ("_size", "_rep")

    def __init__(self, size: int, bits: Union[np.ndarray, Iterable[int], None] = None):
        if int(size) <= 0:
            raise SketchError(f"bitmap size must be positive, got {size}")
        size = int(size)
        self._size = size
        if bits is None:
            self._rep = _StageRep(np.zeros(size, dtype=np.bool_))
        else:
            arr = np.asarray(bits, dtype=np.bool_)
            if arr.ndim != 1 or arr.shape[0] != size:
                raise SketchError(
                    f"initial bits must be a flat array of length {size}, "
                    f"got shape {arr.shape}"
                )
            self._rep = DenseWordsRep(backends.pack_bool(arr))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, bits: np.ndarray) -> "Bitmap":
        """Wrap an existing boolean array (copied) into a bitmap."""
        arr = np.asarray(bits, dtype=np.bool_)
        return cls(arr.shape[0], arr)

    @classmethod
    def _adopt(cls, bits: np.ndarray) -> "Bitmap":
        """Wrap a freshly-allocated boolean array *without* copying.

        Internal: the caller transfers ownership of ``bits`` (a flat,
        non-empty ``bool_`` array nobody else mutates).  The array
        becomes the bitmap's mutation stage; word consumers pack it
        lazily like any other staged bitmap.
        """
        bitmap = cls.__new__(cls)
        bitmap._size = int(bits.shape[0])
        bitmap._rep = _StageRep(bits)
        return bitmap

    @classmethod
    def _adopt_words(cls, size: int, words: np.ndarray) -> "Bitmap":
        """Wrap a freshly-allocated word array *without* copying.

        Internal: ``words`` must be a ``uint64`` array of exactly
        ``word_count(size)`` words whose bits beyond ``size`` are zero
        (the tail invariant every producer in this package maintains).
        Used by the join accumulators and the interval-index pools.
        """
        bitmap = cls.__new__(cls)
        bitmap._size = int(size)
        bitmap._rep = DenseWordsRep(words)
        return bitmap

    @classmethod
    def _with_rep(cls, size: int, rep) -> "Bitmap":
        bitmap = cls.__new__(cls)
        bitmap._size = int(size)
        bitmap._rep = rep
        return bitmap

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitmap":
        """Create a bitmap of ``size`` bits with the given indices set.

        This is the bulk equivalent of an RSU processing a whole
        measurement period of vehicle encodings at once.
        """
        bitmap = cls(size)
        bitmap.set_many(indices)
        return bitmap

    def copy(self) -> "Bitmap":
        """Return an independent copy, preserving the representation."""
        return Bitmap._with_rep(self._size, self._rep.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of bits ``m`` in the bitmap."""
        return self._size

    @property
    def bits(self) -> np.ndarray:
        """Read-only boolean array of the bitmap's content.

        For staged bitmaps this is a view of the live stage; for packed
        representations it is unpacked on demand.  Either way it is not
        writable — mutation goes through :meth:`set`/:meth:`set_many`.
        """
        rep = self._rep
        if rep.kind == "stage":
            view = rep.bits.view()
        else:
            view = backends.unpack_words(rep.to_words(self._size), self._size)
        view.flags.writeable = False
        return view

    @property
    def words(self) -> np.ndarray:
        """Read-only packed ``uint64`` words (little-endian bit order).

        Accessing this on a staged/sparse/rle bitmap converts it to the
        dense form in place first, so repeated word consumers pay the
        conversion once.
        """
        view = self._dense_words().view()
        view.flags.writeable = False
        return view

    @property
    def backend_kind(self) -> str:
        """Current representation: ``dense``, ``sparse`` or ``rle``."""
        kind = self._rep.kind
        return "dense" if kind == "stage" else kind

    @property
    def nbytes(self) -> int:
        """Bytes held by the current representation's arrays."""
        return self._rep.nbytes()

    @property
    def is_power_of_two_sized(self) -> bool:
        """Whether ``size`` is a power of two (required for joining)."""
        return is_power_of_two(self._size)

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------

    def _dense_words(self) -> np.ndarray:
        """The packed words, converting this bitmap to dense in place."""
        rep = self._rep
        if rep.kind != "dense":
            rep = DenseWordsRep(rep.to_words(self._size))
            self._rep = rep
            _note_conversion("dense")
        return rep.words

    def _words_view(self) -> np.ndarray:
        """Packed words *without* changing the stored representation."""
        return self._rep.to_words(self._size)

    def pack(self) -> "Bitmap":
        """Ensure the dense packed-word form; returns ``self``."""
        self._dense_words()
        return self

    def compress(self) -> "Bitmap":
        """Switch to whichever representation measures smallest.

        The choice is by actual byte cost for this bitmap's content —
        the "measured fill thresholds" are therefore exact, not tuned:
        sparse (4 B/set bit) wins below 1/16 fill, RLE (8 B/run) wins
        whenever bits cluster into few runs, dense wins ties.  Returns
        ``self``.
        """
        words = self._words_view()
        sizes = backends.representation_sizes(words, self._size)
        best = min(REPRESENTATION_KINDS, key=lambda kind: sizes.get(kind, 1 << 62))
        if sizes["dense"] <= sizes.get(best, 1 << 62):
            best = "dense"
        return self._convert_to(best, words)

    def to_representation(self, kind: str) -> "Bitmap":
        """A new bitmap with the same bits in the given representation."""
        if kind not in REPRESENTATION_KINDS:
            raise SketchError(
                f"unknown bitmap representation {kind!r}; "
                f"expected one of {REPRESENTATION_KINDS}"
            )
        return self.copy()._convert_to(kind, None)

    def _convert_to(self, kind: str, words) -> "Bitmap":
        if kind == self._rep.kind:
            return self
        if words is None:
            words = self._words_view()
        if kind == "dense":
            self._rep = DenseWordsRep(words)
        elif kind == "sparse":
            self._rep = SparseBitsRep(backends.words_to_indices(words, self._size))
        else:
            starts, lengths = backends.words_to_runs(words, self._size)
            self._rep = RunLengthRep(starts, lengths)
        _note_conversion(kind)
        return self

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to one (the paper's ``B[h_v] = 1``)."""
        idx = int(index)
        if not 0 <= idx < self._size:
            raise SketchError(f"bit index {idx} out of range for size {self._size}")
        rep = self._rep
        if rep.kind == "stage":
            rep.bits[idx] = True
        else:
            words = self._dense_words()
            words[idx >> 6] |= np.uint64(1) << np.uint64(idx & 63)

    def set_many(
        self, indices: Iterable[int], *, assume_in_range: bool = False
    ) -> None:
        """Set every bit whose index appears in ``indices``.

        Duplicate indices are harmless (setting a set bit is a no-op),
        exactly as hash collisions are in the paper's encoding.

        ``assume_in_range=True`` skips the min/max range scan — an
        internal fast path for callers (the population encoder) whose
        indices are already reduced modulo ``size``.  Out-of-range
        indices then raise ``IndexError`` from numpy instead of
        :class:`SketchError`; negative ones silently wrap, so only pass
        it when the guarantee actually holds.
        """
        if isinstance(indices, np.ndarray):
            idx = indices
        else:
            # One-pass conversion; no intermediate Python list.
            idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if not assume_in_range:
            idx = idx.astype(np.int64, copy=False)
            if idx.min() < 0 or idx.max() >= self._size:
                raise SketchError(
                    f"bit indices must lie in [0, {self._size}), "
                    f"got range [{idx.min()}, {idx.max()}]"
                )
        rep = self._rep
        if rep.kind == "stage":
            rep.bits[idx] = True
        else:
            backends.set_bits_in_words(self._dense_words(), idx)

    def clear(self) -> None:
        """Reset every bit to zero (start of a new measurement period)."""
        rep = self._rep
        if rep.kind == "stage":
            rep.bits[:] = False
        else:
            self._rep = DenseWordsRep(
                np.zeros(backends.word_count(self._size), dtype=np.uint64)
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def get(self, index: int) -> bool:
        """Return the value of the bit at ``index``."""
        idx = int(index)
        if not 0 <= idx < self._size:
            raise SketchError(f"bit index {idx} out of range for size {self._size}")
        return self._rep.get(self._size, idx)

    def ones(self) -> int:
        """Number of bits that are one (popcount on the dense form)."""
        return self._rep.popcount(self._size)

    def zeros(self) -> int:
        """Number of bits that are zero."""
        return self._size - self.ones()

    def one_fraction(self) -> float:
        """Fraction of bits that are one (the paper's ``V_1``)."""
        return self.ones() / self._size

    def zero_fraction(self) -> float:
        """Fraction of bits that are zero (the paper's ``V_0``)."""
        return self.zeros() / self._size

    def is_saturated(self) -> bool:
        """True when every bit is one — no counting information left."""
        return self.ones() == self._size

    def is_empty(self) -> bool:
        """True when every bit is zero."""
        return self.ones() == 0

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def _check_same_size(self, other: "Bitmap", op: str) -> None:
        if not isinstance(other, Bitmap):
            raise SketchError(f"cannot {op} a Bitmap with {type(other).__name__}")
        if other.size != self._size:
            raise SketchError(
                f"cannot {op} bitmaps of different sizes "
                f"({self._size} vs {other.size}); expand first"
            )

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "AND")
        return Bitmap._adopt_words(
            self._size, self._dense_words() & other._dense_words()
        )

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "OR")
        return Bitmap._adopt_words(
            self._size, self._dense_words() | other._dense_words()
        )

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other, "XOR")
        return Bitmap._adopt_words(
            self._size, self._dense_words() ^ other._dense_words()
        )

    def __invert__(self) -> "Bitmap":
        inverted = ~self._dense_words()
        inverted[-1] &= backends.tail_mask(self._size)
        return Bitmap._adopt_words(self._size, inverted)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        # Via the side-effect-free word view: equality across mixed
        # representations (a hot dense record vs its cold RLE twin)
        # must not silently re-inflate the compressed one.
        return self._size == other.size and bool(
            np.array_equal(self._words_view(), other._words_view())
        )

    def __hash__(self) -> int:  # pragma: no cover - bitmaps are mutable
        raise TypeError("Bitmap is mutable and unhashable")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def expand(self, target_size: int) -> "Bitmap":
        """Replicate this bitmap until it reaches ``target_size`` bits.

        This is the paper's bitmap expansion (Fig. 2): the bitmap is
        tiled whole, which requires ``target_size`` to be an exact
        multiple (and, for correctness of the alignment property, both
        sizes to be powers of two).
        """
        from repro.sketch.expansion import expand_to

        return expand_to(self, target_size)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[bool]:
        return (bool(b) for b in self.bits)

    def __repr__(self) -> str:
        return f"Bitmap(size={self._size}, ones={self.ones()})"
