"""Batched bitmaps: whole Monte-Carlo cells as single numpy reductions.

The experiment harness evaluates every estimator over many independent
runs per cell (the paper uses 1000).  Joining each run's ``t`` records
one :class:`~repro.sketch.bitmap.Bitmap` at a time leaves most of the
wall clock in Python call overhead.  A :class:`BitmapBatch` stacks the
same-period records of all runs into one ``(runs, words)`` packed
``uint64`` matrix so the AND/OR joins of Sections III and IV run as
word-wise numpy operations over the whole cell — 1/8th the bytes of
the seed's bool matrices — and the zero/one accounting of Eq. 1 is a
per-row popcount.

Joins across different bitmap sizes use the same broadcast trick as
:func:`repro.sketch.expansion.apply_expanded_words`: the ``(runs,
m/64)`` accumulator is viewed as ``(runs, m/l, l/64)`` and the smaller
batch's words are broadcast in, which the paper's power-of-two
alignment property makes bit-identical to joining tiled expansions.

Every operation here is bit-for-bit equivalent to its scalar
counterpart in :mod:`repro.sketch.join`; ``tests/test_sketch_batch.py``
and ``tests/test_batch_equivalence.py`` pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SketchError
from repro.obs import runtime as obs
from repro.sketch import backends
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import (
    _EXPANSION_RATIO,
    apply_expanded_words,
    expansion_factor,
    observe_expansion_group,
)


class BitmapBatch:
    """A stack of ``runs`` same-size bitmaps in one packed word matrix.

    Row ``r`` is run ``r``'s bitmap for one measurement period.  The
    batch is the unit the batched estimators operate on: one
    :class:`BitmapBatch` per period, all sharing the same run count.
    Construction accepts ``(runs, size)`` bool matrices (the workload
    generators' native scatter target) and packs them once.
    """

    __slots__ = ("_words", "_size")

    def __init__(self, bits: np.ndarray, copy: bool = True):
        arr = np.asarray(bits, dtype=np.bool_)
        if arr.ndim != 2:
            raise SketchError(
                f"a bitmap batch must be a (runs, size) matrix, "
                f"got shape {arr.shape}"
            )
        if arr.shape[0] < 1 or arr.shape[1] < 1:
            raise SketchError(
                f"a bitmap batch needs at least one run and one bit, "
                f"got shape {arr.shape}"
            )
        # Packing copies regardless, so ``copy`` is honoured for free.
        self._size = int(arr.shape[1])
        self._words = backends.pack_bool_matrix(arr)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, runs: int, size: int) -> "BitmapBatch":
        """An all-zero batch (start of a measurement period, all runs)."""
        if runs < 1 or size < 1:
            raise SketchError(
                f"runs and size must be positive, got ({runs}, {size})"
            )
        return cls._adopt_words(
            int(size),
            np.zeros((int(runs), backends.word_count(size)), dtype=np.uint64),
        )

    @classmethod
    def from_bitmaps(cls, bitmaps: Sequence[Bitmap]) -> "BitmapBatch":
        """Stack one same-size bitmap per run into a batch."""
        if not bitmaps:
            raise SketchError("cannot build a batch from zero bitmaps")
        sizes = {b.size for b in bitmaps}
        if len(sizes) != 1:
            raise SketchError(
                f"all bitmaps in a batch must share one size, got {sorted(sizes)}"
            )
        return cls._adopt_words(
            bitmaps[0].size, np.stack([b._dense_words() for b in bitmaps])
        )

    @classmethod
    def _adopt(cls, bits: np.ndarray) -> "BitmapBatch":
        """Pack a freshly-scattered ``(runs, size)`` bool matrix.

        The workload generators scatter vehicle hashes into a bool
        matrix (byte-per-bit scatters beat word read-modify-writes by
        ~5x) and hand it over here; the one ``packbits`` pass per
        period is the entire conversion cost.
        """
        batch = cls.__new__(cls)
        batch._size = int(bits.shape[1])
        batch._words = backends.pack_bool_matrix(bits)
        return batch

    @classmethod
    def _adopt_words(cls, size: int, words: np.ndarray) -> "BitmapBatch":
        """Wrap a ``(runs, words)`` uint64 matrix *without* copying.

        Internal: the caller transfers ownership and guarantees the
        tail-bit invariant (bits beyond ``size`` in each row's last
        word are zero).
        """
        batch = cls.__new__(cls)
        batch._size = int(size)
        batch._words = words
        return batch

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def runs(self) -> int:
        """Number of stacked bitmaps (Monte-Carlo runs)."""
        return int(self._words.shape[0])

    @property
    def size(self) -> int:
        """Bits per bitmap ``m`` (shared by every run)."""
        return self._size

    @property
    def words(self) -> np.ndarray:
        """Read-only ``(runs, words)`` view of the packed matrix."""
        view = self._words.view()
        view.flags.writeable = False
        return view

    @property
    def bits(self) -> np.ndarray:
        """Read-only ``(runs, size)`` bool matrix, unpacked on demand."""
        view = backends.unpack_words_matrix(self._words, self._size)
        view.flags.writeable = False
        return view

    def row(self, run: int) -> Bitmap:
        """Materialize run ``run``'s bitmap as a scalar :class:`Bitmap`."""
        return Bitmap._adopt_words(self._size, np.array(self._words[run]))

    def to_bitmaps(self) -> List[Bitmap]:
        """Materialize every run as a scalar :class:`Bitmap`."""
        return [self.row(run) for run in range(self.runs)]

    # ------------------------------------------------------------------
    # Mutation (workload generation hot path)
    # ------------------------------------------------------------------

    def set_row_indices(self, run: int, indices: np.ndarray) -> None:
        """Set the given (already range-reduced) bits of one run."""
        backends.set_bits_in_words(self._words[run], indices)

    # ------------------------------------------------------------------
    # Accounting — per-run vectors of the scalar Bitmap accessors
    # ------------------------------------------------------------------

    def ones(self) -> np.ndarray:
        """Per-run count of one bits, shape ``(runs,)``."""
        return backends.popcount_rows(self._words)

    def zeros_count(self) -> np.ndarray:
        """Per-run count of zero bits, shape ``(runs,)``."""
        return self._size - self.ones()

    def one_fractions(self) -> np.ndarray:
        """Per-run ``V_1`` vector."""
        return self.ones() / self._size

    def zero_fractions(self) -> np.ndarray:
        """Per-run ``V_0`` vector."""
        return self.zeros_count() / self._size

    # ------------------------------------------------------------------
    # Combination / expansion
    # ------------------------------------------------------------------

    def expand(self, target_size: int) -> "BitmapBatch":
        """Tile every run's bitmap up to ``target_size`` (Fig. 2)."""
        factor = expansion_factor(self._size, target_size)
        if factor == 1:
            return self
        return BitmapBatch._adopt_words(
            int(target_size),
            backends.tile_words_rows(self._words, self._size, factor),
        )

    def _check_runs(self, other: "BitmapBatch", op: str) -> None:
        if not isinstance(other, BitmapBatch):
            raise SketchError(
                f"cannot {op} a BitmapBatch with {type(other).__name__}"
            )
        if other.runs != self.runs:
            raise SketchError(
                f"cannot {op} batches with different run counts "
                f"({self.runs} vs {other.runs})"
            )

    def _combine(self, other: "BitmapBatch", op: np.ufunc) -> "BitmapBatch":
        big, small = (self, other) if self.size >= other.size else (other, self)
        if big.size != small.size and obs.ACTIVE:
            _EXPANSION_RATIO.observe(float(big.size // small.size))
        out = np.array(big._words)
        apply_expanded_words(out, big.size, small._words, small.size, op)
        return BitmapBatch._adopt_words(big.size, out)

    def __and__(self, other: "BitmapBatch") -> "BitmapBatch":
        self._check_runs(other, "AND")
        return self._combine(other, np.bitwise_and)

    def __or__(self, other: "BitmapBatch") -> "BitmapBatch":
        self._check_runs(other, "OR")
        return self._combine(other, np.bitwise_or)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitmapBatch):
            return NotImplemented
        return self._size == other._size and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:  # pragma: no cover - batches are mutable
        raise TypeError("BitmapBatch is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitmapBatch(runs={self.runs}, size={self.size})"


def _common_size(batches: Sequence[BitmapBatch], size: Optional[int]) -> int:
    if not batches:
        raise SketchError("cannot join an empty collection of batches")
    runs = {batch.runs for batch in batches}
    if len(runs) != 1:
        raise SketchError(
            f"all batches in a join must share one run count, got {sorted(runs)}"
        )
    largest = max(batch.size for batch in batches)
    if size is None:
        return largest
    if int(size) < largest:
        raise SketchError(
            f"requested join size {size} is smaller than the largest "
            f"batch ({largest})"
        )
    return int(size)


def _observe_batch_join(op: str, size: int, batches: Sequence[BitmapBatch]) -> None:
    """Mirror the scalar join counters, scaled by the run count."""
    runs = batches[0].runs
    obs.counter(
        "repro_joins_total", "Bitmap joins performed.", op=op
    ).inc(runs)
    obs.counter(
        "repro_join_bits_processed_total",
        "Bitmap bits streamed through joins (size x inputs).",
    ).inc(size * len(batches) * runs)


def _accumulate_batch_join(
    op: np.ufunc, batches: Sequence[BitmapBatch], size: int
) -> BitmapBatch:
    first = batches[0]
    factor = expansion_factor(first.size, size)
    # tile_words_rows copies even at factor 1 — the accumulator seed.
    out = backends.tile_words_rows(first._words, first.size, factor)
    for batch in batches[1:]:
        apply_expanded_words(out, size, batch._words, batch.size, op)
    return BitmapBatch._adopt_words(size, out)


def and_join_batch(
    batches: Sequence[BitmapBatch], size: Optional[int] = None
) -> BitmapBatch:
    """Per-run :func:`repro.sketch.join.and_join` across period batches.

    ``batches[p]`` holds period ``p``'s bitmaps for all runs; the
    result's row ``r`` equals ``and_join([batches[0].row(r), ...])``.
    """
    size = _common_size(batches, size)
    if obs.ACTIVE:
        _observe_batch_join("and", size, batches)
        observe_expansion_group([b.size for b in batches], size)
    return _accumulate_batch_join(np.bitwise_and, batches, size)


def or_join_batch(
    batches: Sequence[BitmapBatch], size: Optional[int] = None
) -> BitmapBatch:
    """Per-run :func:`repro.sketch.join.or_join` across period batches."""
    size = _common_size(batches, size)
    if obs.ACTIVE:
        _observe_batch_join("or", size, batches)
        observe_expansion_group([b.size for b in batches], size)
    return _accumulate_batch_join(np.bitwise_or, batches, size)


@dataclass(frozen=True)
class SplitJoinBatchResult:
    """Batched :class:`~repro.sketch.join.SplitJoinResult` (Sec. III-B)."""

    half_a: BitmapBatch
    half_b: BitmapBatch
    joined: BitmapBatch

    @property
    def size(self) -> int:
        """The common (maximum) bitmap size ``m``."""
        return self.joined.size


def split_and_join_batch(batches: Sequence[BitmapBatch]) -> SplitJoinBatchResult:
    """Per-run split-and-join: batched Section III-B construction."""
    if len(batches) < 2:
        raise SketchError(
            f"split-and-join needs at least 2 traffic records, got {len(batches)}"
        )
    size = _common_size(batches, None)
    if obs.ACTIVE:
        _observe_batch_join("split", size, batches)
    midpoint = (len(batches) + 1) // 2  # ceil(t/2), as in the paper
    half_a = and_join_batch(batches[:midpoint], size=size)
    half_b = and_join_batch(batches[midpoint:], size=size)
    return SplitJoinBatchResult(
        half_a=half_a, half_b=half_b, joined=half_a & half_b
    )


@dataclass(frozen=True)
class TwoLevelJoinBatchResult:
    """Batched :class:`~repro.sketch.join.TwoLevelJoinResult` (Sec. IV-A)."""

    location_a: BitmapBatch
    location_b: BitmapBatch
    expanded_a: BitmapBatch
    joined: BitmapBatch
    swapped: bool

    @property
    def size(self) -> int:
        """The larger bitmap size ``m'`` (size of the OR-join)."""
        return self.joined.size


def two_level_join_batch(
    batches_a: Sequence[BitmapBatch], batches_b: Sequence[BitmapBatch]
) -> TwoLevelJoinBatchResult:
    """Per-run two-level join: batched Section IV-A pipeline."""
    if obs.ACTIVE:
        _observe_batch_join(
            "two_level",
            max(_common_size(batches_a, None), _common_size(batches_b, None)),
            list(batches_a) + list(batches_b),
        )
    joined_a = and_join_batch(batches_a)
    joined_b = and_join_batch(batches_b)
    swapped = joined_a.size > joined_b.size
    if swapped:
        joined_a, joined_b = joined_b, joined_a
    expanded_a = joined_a.expand(joined_b.size)
    return TwoLevelJoinBatchResult(
        location_a=joined_a,
        location_b=joined_b,
        expanded_a=expanded_a,
        joined=expanded_a | joined_b,
        swapped=swapped,
    )
