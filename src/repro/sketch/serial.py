"""Compact serialization of bitmaps for RSU-to-server uploads.

At the end of each measurement period the RSU "sends the content of
the bitmap B as its traffic record to the central server" (Section
II-D).  This module packs a :class:`~repro.sketch.bitmap.Bitmap` into a
small byte payload and back.

Wire format (version 2, magic ``RBW2``)::

    offset  size  field
    0       4     magic  b"RBW2"
    4       1     kind   0 = dense words, 1 = sparse indices, 2 = RLE
    5       3     padding (zero) — keeps the body 8-byte aligned
    8       8     bit count m, little-endian uint64
    16      ...   body

* dense body — the packed ``uint64`` words as little-endian bytes,
  ``8 * ceil(m/64)`` of them.  Because the in-memory representation is
  already packed words, serialization is a header plus ``tobytes()``
  and deserialization a ``frombuffer`` copy: the seed's per-upload
  ``np.packbits``/``np.unpackbits`` round-trip is gone.
* sparse body — the sorted set-bit indices as little-endian uint32.
* rle body — interleaved little-endian uint32 ``(start, length)``
  pairs of the maximal one-runs.

The 16-byte header is exactly the :class:`~repro.rsu.record`
payload's bitmap offset alignment: a record payload is 16 bytes of
location/period followed by this serialization, so a dense record's
words begin at byte 32 of the record file — 8-byte aligned, which is
what lets the warm tier memory-map ``.record`` files directly
(:mod:`repro.server.tiers`).

The seed's version-1 format (8-byte size header + big-bit-order
``np.packbits`` body, no magic) is still read transparently:
:func:`deserialize_bitmap` detects the magic and falls back.  A
version-1 size header would need a bit count whose low four bytes
spell ``"RBW2"`` little-endian (≈843 M bits) *and* a matching body
length to collide — and :func:`serialize_bitmap_legacy` keeps the old
writer available for compatibility tests and tooling.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.exceptions import SketchError
from repro.sketch import backends
from repro.sketch.bitmap import Bitmap

_LEGACY_HEADER = struct.Struct("<Q")  # v1: little-endian uint64 bit count
_MAGIC = b"RBW2"
_HEADER = struct.Struct("<4sB3xQ")  # magic, kind, pad, bit count

HEADER_SIZE = _HEADER.size

KIND_DENSE = 0
KIND_SPARSE = 1
KIND_RLE = 2

_KIND_BY_NAME = {"dense": KIND_DENSE, "sparse": KIND_SPARSE, "rle": KIND_RLE}
_NAME_BY_KIND = {v: k for k, v in _KIND_BY_NAME.items()}


def serialize_bitmap(bitmap: Bitmap) -> bytes:
    """Pack a bitmap, preserving its current representation.

    Dense (and staged) bitmaps serialize as raw words; sparse and RLE
    bitmaps keep their compressed form on the wire and on disk, so a
    cold archive file is as small as the in-memory representation.
    """
    rep = bitmap._rep
    kind = _KIND_BY_NAME.get(rep.kind, KIND_DENSE)
    if kind == KIND_DENSE:
        words = bitmap._words_view()
        body = words.astype("<u8", copy=False).tobytes()
    elif kind == KIND_SPARSE:
        body = rep.indices.astype("<u4", copy=False).tobytes()
    else:
        pairs = np.empty((rep.starts.shape[0], 2), dtype="<u4")
        pairs[:, 0] = rep.starts
        pairs[:, 1] = rep.lengths
        body = pairs.tobytes()
    return _HEADER.pack(_MAGIC, kind, bitmap.size) + body


def serialize_bitmap_legacy(bitmap: Bitmap) -> bytes:
    """The seed's version-1 writer: size header + big-bit-order pack.

    Kept for compatibility tests and for regenerating old-format
    fixtures; production paths always write version 2.
    """
    packed = np.packbits(bitmap.bits)
    return _LEGACY_HEADER.pack(bitmap.size) + packed.tobytes()


def parse_header(payload: bytes) -> Tuple[str, int, int]:
    """``(kind, size, body_offset)`` of a serialized bitmap.

    Understands both formats; the body offset lets callers (the warm
    tier's memory-mapper) locate the dense words inside a larger file
    without copying the payload.
    """
    if payload[:4] == _MAGIC and len(payload) >= HEADER_SIZE:
        _, kind, size = _HEADER.unpack_from(payload)
        if kind not in _NAME_BY_KIND:
            raise SketchError(f"unknown bitmap representation kind {kind}")
        return _NAME_BY_KIND[kind], int(size), HEADER_SIZE
    if len(payload) < _LEGACY_HEADER.size:
        raise SketchError("bitmap payload too short to contain a header")
    (size,) = _LEGACY_HEADER.unpack_from(payload)
    return "legacy", int(size), _LEGACY_HEADER.size


def _deserialize_legacy(size: int, body: bytes) -> Bitmap:
    expected_bytes = (size + 7) // 8
    if len(body) != expected_bytes:
        raise SketchError(
            f"bitmap payload body has {len(body)} bytes, "
            f"expected {expected_bytes} for {size} bits"
        )
    bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8))[:size]
    return Bitmap(int(size), bits.astype(np.bool_))


def deserialize_bitmap(payload: bytes) -> Bitmap:
    """Inverse of :func:`serialize_bitmap` (reads v1 and v2 payloads)."""
    kind, size, offset = parse_header(payload)
    if size == 0:
        raise SketchError("bitmap payload declares zero bits")
    body = payload[offset:]
    if kind == "legacy":
        return _deserialize_legacy(size, body)
    if kind == "dense":
        expected = backends.word_count(size) * 8
        if len(body) != expected:
            raise SketchError(
                f"dense bitmap body has {len(body)} bytes, "
                f"expected {expected} for {size} bits"
            )
        words = np.frombuffer(body, dtype="<u8").astype(np.uint64)
        if int(words[-1]) & ~int(backends.tail_mask(size)) & 0xFFFFFFFFFFFFFFFF:
            raise SketchError(
                f"dense bitmap body sets bits beyond the declared "
                f"size of {size}"
            )
        return Bitmap._adopt_words(size, words)
    if len(body) % 4 != 0:
        raise SketchError(
            f"{kind} bitmap body length {len(body)} is not a multiple of 4"
        )
    values = np.frombuffer(body, dtype="<u4").astype(np.uint32)
    if kind == "sparse":
        if values.shape[0] and (
            int(values.max()) >= size
            or np.any(values[1:] <= values[:-1])
        ):
            raise SketchError(
                "sparse bitmap body must be strictly increasing "
                f"indices below {size}"
            )
        return Bitmap._with_rep(
            size, backends.SparseBitsRep(values)
        )
    if values.shape[0] % 2 != 0:
        raise SketchError("rle bitmap body must hold (start, length) pairs")
    pairs = values.reshape(-1, 2)
    starts = np.ascontiguousarray(pairs[:, 0])
    lengths = np.ascontiguousarray(pairs[:, 1])
    if starts.shape[0]:
        ends = starts.astype(np.int64) + lengths.astype(np.int64)
        if (
            int(ends.max()) > size
            or np.any(lengths == 0)
            or np.any(starts[1:].astype(np.int64) < ends[:-1])
        ):
            raise SketchError(
                f"rle bitmap body has overlapping, empty or out-of-range "
                f"runs for size {size}"
            )
    return Bitmap._with_rep(size, backends.RunLengthRep(starts, lengths))
