"""Compact serialization of bitmaps for RSU-to-server uploads.

At the end of each measurement period the RSU "sends the content of
the bitmap B as its traffic record to the central server" (Section
II-D).  This module packs a :class:`~repro.sketch.bitmap.Bitmap` into a
small byte payload (1 bit per bit plus an 8-byte size header) and back,
so the transport layer of the simulation moves realistic message sizes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import SketchError
from repro.sketch.bitmap import Bitmap

_HEADER = struct.Struct("<Q")  # little-endian uint64 bit count


def serialize_bitmap(bitmap: Bitmap) -> bytes:
    """Pack a bitmap into ``8 + ceil(m/8)`` bytes."""
    packed = np.packbits(bitmap.bits)
    return _HEADER.pack(bitmap.size) + packed.tobytes()


def deserialize_bitmap(payload: bytes) -> Bitmap:
    """Inverse of :func:`serialize_bitmap`."""
    if len(payload) < _HEADER.size:
        raise SketchError("bitmap payload too short to contain a header")
    (size,) = _HEADER.unpack_from(payload)
    body = payload[_HEADER.size:]
    expected_bytes = (size + 7) // 8
    if len(body) != expected_bytes:
        raise SketchError(
            f"bitmap payload body has {len(body)} bytes, "
            f"expected {expected_bytes} for {size} bits"
        )
    if size == 0:
        raise SketchError("bitmap payload declares zero bits")
    bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8))[:size]
    return Bitmap(int(size), bits.astype(np.bool_))
