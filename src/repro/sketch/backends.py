"""Packed-word, sparse and run-length bitmap representations.

The seed stored every traffic record as a dense ``numpy.bool_`` array —
one full byte per bit.  At city scale most ``(location, period)`` cells
are sparse and most periods are cold, so the system now supports three
interchangeable representations, all describing the identical bit
string:

``dense``
    ``uint64`` words, 64 bits per word (8x smaller than bool arrays).
    The default working form: AND/OR/XOR run as ``np.bitwise_*`` over
    words and touch 1/8th the bytes the bool arrays did, and zero
    counting uses the hardware popcount (``np.bitwise_count``) when the
    installed numpy has it, falling back to a byte lookup table.
``sparse``
    A sorted ``uint32`` array of set-bit indices.  4 bytes per set bit,
    so it beats the word form below ~1/16 fill and beats the bool form
    below ~1/4 fill.  The natural shape for near-empty records.
``rle``
    Run-length encoding: ``(start, length)`` pairs of consecutive one
    runs, 8 bytes per run.  The cold-storage form — clustered bits
    compress far below the sparse form, and a fully-empty or
    fully-saturated bitmap is 0 or 1 run.

Bit layout of the word form is little-endian throughout: bit ``i`` of
the bitmap is bit ``i % 64`` of word ``i // 64``, matching
``np.packbits(..., bitorder="little")`` viewed as native uint64 on a
little-endian host (the only hosts the project targets; the
serialization layer pins ``<u8`` on disk and on the wire).

Everything here is pure array plumbing; representation *policy* (which
form a bitmap should take, promotion/demotion thresholds) lives in
:mod:`repro.sketch.bitmap`, and the tiered archive policy in
:mod:`repro.server.tiers`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import SketchError

WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def word_count(size: int) -> int:
    """Words needed to hold ``size`` bits."""
    return (int(size) + WORD_BITS - 1) >> 6


def tail_mask(size: int) -> np.uint64:
    """Mask of the valid bits in the (possibly partial) last word."""
    rem = int(size) & 63
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


# ----------------------------------------------------------------------
# bool <-> words
# ----------------------------------------------------------------------


def pack_bool(bits: np.ndarray) -> np.ndarray:
    """Pack a flat bool array into little-endian-bit uint64 words.

    Bits past ``len(bits)`` in the final word are zero — the invariant
    every word array in the system maintains, so popcounts and
    equality never see garbage tail bits.
    """
    size = int(bits.shape[0])
    packed = np.packbits(bits, bitorder="little")
    needed = word_count(size) * 8
    if packed.shape[0] != needed:
        padded = np.zeros(needed, dtype=np.uint8)
        padded[: packed.shape[0]] = packed
        packed = padded
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, size: int) -> np.ndarray:
    """Inverse of :func:`pack_bool`: words back to a flat bool array."""
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8),
        count=int(size),
        bitorder="little",
    ).view(np.bool_)


def pack_bool_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(runs, size)`` bool matrix into ``(runs, words)`` uint64."""
    runs, size = bits.shape
    packed = np.packbits(bits, axis=1, bitorder="little")
    needed = word_count(size) * 8
    if packed.shape[1] != needed:
        padded = np.zeros((runs, needed), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_words_matrix(words: np.ndarray, size: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`."""
    rows = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(rows, axis=1, bitorder="little")[
        :, : int(size)
    ].view(np.bool_)


# ----------------------------------------------------------------------
# Popcount: hardware ufunc when numpy has it, byte LUT otherwise
# ----------------------------------------------------------------------

HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Set-bit count of every byte value — the fallback popcount kernel for
#: numpy < 2.0 (``np.bitwise_count`` landed in 2.0).
_POPCOUNT_LUT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint16
)


def _popcount_words_lut(words: np.ndarray) -> int:
    return int(
        _POPCOUNT_LUT[np.ascontiguousarray(words).view(np.uint8)].sum()
    )


def _popcount_rows_lut(words: np.ndarray) -> np.ndarray:
    per_byte = _POPCOUNT_LUT[np.ascontiguousarray(words).view(np.uint8)]
    return per_byte.sum(axis=1, dtype=np.int64)


if HAVE_BITWISE_COUNT:

    def popcount_words(words: np.ndarray) -> int:
        """Total set bits across a word array."""
        return int(np.bitwise_count(words).sum(dtype=np.int64))

    def popcount_rows(words: np.ndarray) -> np.ndarray:
        """Per-row set-bit counts of a ``(runs, words)`` matrix."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised on numpy < 2.0 runners
    popcount_words = _popcount_words_lut
    popcount_rows = _popcount_rows_lut


# ----------------------------------------------------------------------
# Scatter / tiling kernels
# ----------------------------------------------------------------------


def set_bits_in_words(words: np.ndarray, indices: np.ndarray) -> None:
    """OR the given bit indices into a word array (duplicates fine)."""
    idx = indices.astype(np.uint64, copy=False)
    np.bitwise_or.at(
        words,
        (idx >> np.uint64(6)).astype(np.intp),
        np.left_shift(np.uint64(1), idx & np.uint64(63)),
    )


def _replicate_multiplier(pattern_bits: int, target_bits: int) -> np.uint64:
    """Multiplier replicating a sub-word pattern across ``target_bits``.

    A value below ``2**pattern_bits`` times this constant tiles the
    pattern ``target_bits // pattern_bits`` times with no carries —
    the in-word analogue of ``np.tile`` for the paper's power-of-two
    expansion at sizes under one word.
    """
    return np.uint64(
        sum(1 << (rep * pattern_bits) for rep in range(target_bits // pattern_bits))
    )


def tile_words(words: np.ndarray, size: int, factor: int) -> np.ndarray:
    """Expand ``size`` bits of words to ``size * factor`` by replication.

    Always returns a freshly-allocated array (callers use it to seed
    join accumulators, so ``factor == 1`` is a copy, not a view).
    """
    factor = int(factor)
    if factor == 1:
        return np.array(words)
    size = int(size)
    target = size * factor
    if size % WORD_BITS == 0:
        return np.tile(words, factor)
    if size < WORD_BITS and size & (size - 1) == 0:
        pattern = words[0]
        if target <= WORD_BITS:
            return np.array(
                [pattern * _replicate_multiplier(size, target)], dtype=np.uint64
            )
        full = pattern * _replicate_multiplier(size, WORD_BITS)
        return np.full(target >> 6, full, dtype=np.uint64)
    # Irregular sizes (non-power-of-two sub-word) take the slow road.
    return pack_bool(np.tile(unpack_words(words, size), factor))


def tile_words_rows(words: np.ndarray, size: int, factor: int) -> np.ndarray:
    """Row-wise :func:`tile_words` for a ``(runs, words)`` matrix."""
    factor = int(factor)
    if factor == 1:
        return np.array(words)
    size = int(size)
    target = size * factor
    if size % WORD_BITS == 0:
        return np.tile(words, (1, factor))
    if size < WORD_BITS and size & (size - 1) == 0:
        if target <= WORD_BITS:
            return words * _replicate_multiplier(size, target)
        full = words * _replicate_multiplier(size, WORD_BITS)
        return np.tile(full, (1, target >> 6))
    return pack_bool_matrix(
        np.tile(unpack_words_matrix(words, size), (1, factor))
    )


def apply_expanded_words(
    out: np.ndarray,
    out_size: int,
    src: np.ndarray,
    src_size: int,
    op: np.ufunc,
) -> None:
    """Fold ``src`` into ``out`` as if ``src`` were tile-expanded.

    The word-level counterpart of
    :func:`repro.sketch.expansion.apply_expanded`: ``out`` (last axis
    words, ``out_size`` bits) is combined in place with the replication
    of ``src`` (``src_size`` bits, ``out_size = k * src_size``) without
    materializing the expansion.  ``op`` is ``np.bitwise_and`` /
    ``np.bitwise_or``.  Works on 1-D word arrays and on ``(runs,
    words)`` matrices (``src`` then ``(words,)`` or ``(runs, words)``).
    """
    out_size, src_size = int(out_size), int(src_size)
    if src_size == out_size:
        op(out, src, out=out)
        return
    if src_size < WORD_BITS:
        if out_size <= WORD_BITS:
            op(out, src * _replicate_multiplier(src_size, out_size), out=out)
            return
        src = src * _replicate_multiplier(src_size, WORD_BITS)
        src_size = WORD_BITS
    factor = out_size // src_size
    nwords = src_size >> 6
    view = out.reshape(out.shape[:-1] + (factor, nwords))
    if src.ndim > 1:
        src = src[..., np.newaxis, :]
    op(view, src, out=view)


# ----------------------------------------------------------------------
# words <-> sparse indices <-> run lengths
# ----------------------------------------------------------------------


def words_to_indices(words: np.ndarray, size: int) -> np.ndarray:
    """Sorted uint32 indices of the set bits."""
    if int(size) >= 1 << 32:
        raise SketchError(
            f"sparse representation requires size < 2^32, got {size}"
        )
    return np.flatnonzero(unpack_words(words, size)).astype(np.uint32)


def indices_to_words(indices: np.ndarray, size: int) -> np.ndarray:
    """Dense words with exactly the given bit indices set."""
    words = np.zeros(word_count(size), dtype=np.uint64)
    if indices.shape[0]:
        set_bits_in_words(words, indices)
    return words


def words_to_runs(
    words: np.ndarray, size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(starts, lengths)`` uint32 arrays of the maximal one-runs."""
    if int(size) >= 1 << 32:
        raise SketchError(f"RLE representation requires size < 2^32, got {size}")
    bits = unpack_words(words, size).astype(np.int8)
    boundaries = np.diff(bits, prepend=np.int8(0), append=np.int8(0))
    starts = np.flatnonzero(boundaries == 1).astype(np.uint32)
    ends = np.flatnonzero(boundaries == -1).astype(np.uint32)
    return starts, (ends - starts).astype(np.uint32)


def runs_to_words(
    starts: np.ndarray, lengths: np.ndarray, size: int
) -> np.ndarray:
    """Inverse of :func:`words_to_runs`."""
    delta = np.zeros(int(size) + 1, dtype=np.int32)
    np.add.at(delta, starts.astype(np.int64), 1)
    np.add.at(delta, (starts.astype(np.int64) + lengths.astype(np.int64)), -1)
    bits = np.cumsum(delta[: int(size)]) > 0
    return pack_bool(bits)


# ----------------------------------------------------------------------
# Representation containers
# ----------------------------------------------------------------------


class DenseWordsRep:
    """Packed uint64 words — the default working representation."""

    kind = "dense"
    __slots__ = ("words",)

    def __init__(self, words: np.ndarray):
        self.words = words

    def nbytes(self) -> int:
        return int(self.words.nbytes)

    def copy(self) -> "DenseWordsRep":
        return DenseWordsRep(np.array(self.words))

    def to_words(self, size: int) -> np.ndarray:
        return self.words

    def popcount(self, size: int) -> int:
        return popcount_words(self.words)

    def get(self, size: int, index: int) -> bool:
        word = self.words[index >> 6]
        return bool((int(word) >> (index & 63)) & 1)


class SparseBitsRep:
    """Sorted set-bit indices — frozen; mutation promotes to dense."""

    kind = "sparse"
    __slots__ = ("indices",)

    def __init__(self, indices: np.ndarray):
        self.indices = indices

    def nbytes(self) -> int:
        return int(self.indices.nbytes)

    def copy(self) -> "SparseBitsRep":
        return SparseBitsRep(np.array(self.indices))

    def to_words(self, size: int) -> np.ndarray:
        return indices_to_words(self.indices, size)

    def popcount(self, size: int) -> int:
        return int(self.indices.shape[0])

    def get(self, size: int, index: int) -> bool:
        pos = int(np.searchsorted(self.indices, np.uint32(index)))
        return pos < self.indices.shape[0] and int(self.indices[pos]) == index


class RunLengthRep:
    """Run-length (start, length) pairs — the cold-storage form."""

    kind = "rle"
    __slots__ = ("starts", "lengths")

    def __init__(self, starts: np.ndarray, lengths: np.ndarray):
        self.starts = starts
        self.lengths = lengths

    def nbytes(self) -> int:
        return int(self.starts.nbytes + self.lengths.nbytes)

    def copy(self) -> "RunLengthRep":
        return RunLengthRep(np.array(self.starts), np.array(self.lengths))

    def to_words(self, size: int) -> np.ndarray:
        return runs_to_words(self.starts, self.lengths, size)

    def popcount(self, size: int) -> int:
        return int(self.lengths.sum(dtype=np.int64))

    def get(self, size: int, index: int) -> bool:
        pos = int(np.searchsorted(self.starts, np.uint32(index), side="right"))
        if pos == 0:
            return False
        start = int(self.starts[pos - 1])
        return index < start + int(self.lengths[pos - 1])


def representation_sizes(words: np.ndarray, size: int) -> dict:
    """Byte cost of each representation of the given bit string.

    The measured-fill selection rule (:meth:`Bitmap.compress`) and the
    memory benchmark both read from this one table, so the promotion
    thresholds the docs quote are exactly what the code computes.
    """
    ones = popcount_words(words)
    starts, lengths = (
        words_to_runs(words, size) if size < 1 << 32 else (None, None)
    )
    sizes = {
        "dense": word_count(size) * 8,
        "dense_bool_seed": int(size),  # the pre-PR-9 baseline: 1 byte/bit
    }
    if size < 1 << 32:
        sizes["sparse"] = ones * 4
        sizes["rle"] = int(starts.shape[0]) * 8
    return sizes
