"""Bit-level sketch substrate.

This package implements the probabilistic data structures that the
paper's traffic records are built from:

* :class:`~repro.sketch.bitmap.Bitmap` — a fixed-size bit array with
  vectorized set/count operations (the paper's traffic record ``B``).
* :mod:`~repro.sketch.linear_counting` — the linear probabilistic
  counting estimator of Whang et al. (Eq. 1 of the paper) together with
  its variance analysis.
* :mod:`~repro.sketch.sizing` — the power-of-two bitmap sizing rule
  (Eq. 2 of the paper).
* :mod:`~repro.sketch.expansion` — replication-based bitmap expansion
  (Section III-A / Fig. 2).
* :mod:`~repro.sketch.join` — AND/OR joins over groups of bitmaps,
  including the two-level join of Section IV-A.
* :mod:`~repro.sketch.interval` — a doubling table resolving any
  contiguous period window in ≤2 cached AND-joins (sliding-window
  queries).
* :mod:`~repro.sketch.batch` — :class:`~repro.sketch.batch.BitmapBatch`
  matrices joining whole Monte-Carlo cells as single numpy reductions.
* :mod:`~repro.sketch.serial` — compact serialization of traffic
  records for RSU-to-server uploads.
* :mod:`~repro.sketch.backends` — the packed-word / sparse-index /
  run-length representations behind :class:`~repro.sketch.bitmap.Bitmap`
  (see docs/performance.md, "Compressed bitmaps & tiered storage").
"""

from repro.sketch.batch import (
    BitmapBatch,
    and_join_batch,
    or_join_batch,
    split_and_join_batch,
    two_level_join_batch,
)
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import expand_to, expansion_factor
from repro.sketch.interval import IntervalJoinIndex, split_range_join
from repro.sketch.join import (
    and_join,
    or_join,
    split_and_join,
    two_level_join,
)
from repro.sketch.linear_counting import (
    LinearCounting,
    linear_counting_estimate,
    linear_counting_stddev,
    zero_fraction_expectation,
)
from repro.sketch.serial import (
    deserialize_bitmap,
    parse_header,
    serialize_bitmap,
    serialize_bitmap_legacy,
)
from repro.sketch.sizing import (
    bitmap_size_for_volume,
    is_power_of_two,
    next_power_of_two,
)

__all__ = [
    "Bitmap",
    "BitmapBatch",
    "IntervalJoinIndex",
    "LinearCounting",
    "and_join",
    "and_join_batch",
    "bitmap_size_for_volume",
    "deserialize_bitmap",
    "expand_to",
    "expansion_factor",
    "is_power_of_two",
    "linear_counting_estimate",
    "linear_counting_stddev",
    "next_power_of_two",
    "or_join",
    "or_join_batch",
    "parse_header",
    "serialize_bitmap",
    "serialize_bitmap_legacy",
    "split_and_join",
    "split_and_join_batch",
    "split_range_join",
    "two_level_join",
    "two_level_join_batch",
    "zero_fraction_expectation",
]
