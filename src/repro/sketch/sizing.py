"""Bitmap sizing — Eq. 2 of the paper.

The central server sets each RSU's bitmap size from the expected
traffic volume ``n̄`` (historical average at the same location and
time) and a system-wide load factor ``f``:

    m = 2 ** ceil(log2(n̄ · f))

The power-of-two constraint is what makes replication-based expansion
align representative bits across bitmaps of different sizes
(Section III-A).
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    v = int(value)
    return v > 0 and (v & (v - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (>= 1)."""
    v = int(value)
    if v <= 1:
        return 1
    return 1 << (v - 1).bit_length()


def bitmap_size_for_volume(expected_volume: float, load_factor: float) -> int:
    """Compute the bitmap size ``m`` from Eq. 2 of the paper.

    Parameters
    ----------
    expected_volume:
        The expected traffic volume ``n̄`` at the RSU during a
        measurement period, based on historical averages.
    load_factor:
        The system-wide load factor ``f``: the ratio of bitmap size to
        expected traffic volume.  Larger ``f`` improves estimation
        accuracy and weakens privacy (Section VI-C).

    Returns
    -------
    int
        ``m = 2^ceil(log2(n̄ × f))``.

    Examples
    --------
    >>> bitmap_size_for_volume(213000, 2)
    524288
    >>> bitmap_size_for_volume(28000, 2)
    65536
    """
    if expected_volume <= 0:
        raise ConfigurationError(
            f"expected traffic volume must be positive, got {expected_volume}"
        )
    if load_factor <= 0:
        raise ConfigurationError(f"load factor must be positive, got {load_factor}")
    target = expected_volume * load_factor
    exponent = math.ceil(math.log2(target))
    return 1 << max(exponent, 0)
