"""Interval-join index: contiguous AND-joins in ≤2 cached joins.

Bitwise AND is associative *and idempotent*, which admits the classic
sparse-table (doubling) decomposition used for range-minimum queries:
level ``k`` of the table holds the AND-join of the ``2^k`` consecutive
bitmaps starting at each position, and any contiguous range ``[l, r)``
is the AND of just two (overlapping) power-of-two entries —
overlapping is harmless precisely because ``x AND x = x``.

The paper's sliding-window workloads (a monitor re-estimating "the
last ``w`` periods" on every arrival, a retrospective history sweeping
a window across a month of records) re-join almost the same records on
every step.  :class:`IntervalJoinIndex` turns each step from an
``O(w)``-record rebuild into ≤2 lookups plus ``O(log w)`` amortized
new table entries, all bit-identical to the from-scratch join:

* expansion composes — tiling to ``m₁`` then to ``m`` equals tiling
  straight to ``m`` (Section III-A's power-of-two replication);
* AND commutes with tiling elementwise, so joining two partial joins
  (each at its own sub-range maximum size) and expanding equals the
  one-shot join at the range maximum.

Entries are memoized lazily: nothing is computed until a range needs
it, so a monitor that only ever asks one window width pays only that
width's levels.  :meth:`IntervalJoinIndex.evict_before` releases
positions that have slid out of every future window.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.exceptions import SketchError
from repro.obs import runtime as obs
from repro.sketch.backends import word_count
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import expand_to
from repro.sketch.join import _JOINS, SplitJoinResult, and_join

#: Recycled combine buffers kept per size (enough for a w=64 window's
#: levels; beyond this the allocator can have them back).
_POOL_LIMIT = 96


class IntervalJoinIndex:
    """A doubling table of AND-joins over an append-only bitmap sequence.

    Positions are absolute: the first appended bitmap is position 0
    forever, even after old positions are evicted.  Ranges are
    half-open ``[start, stop)``.

    Examples
    --------
    >>> from repro.sketch.bitmap import Bitmap
    >>> index = IntervalJoinIndex()
    >>> for i in range(4):
    ...     _ = index.append(Bitmap(8, [1, 1, 1, 1, 0, 0, 1, i % 2]))
    >>> index.range_join(0, 4).ones()
    3
    """

    def __init__(self) -> None:
        self._base = 0
        self._bitmaps: List[Bitmap] = []
        self._table: Dict[Tuple[int, int], Bitmap] = {}
        # Buffer recycling: evicted entries' packed-word arrays, keyed
        # by bitmap size, reused as combine outputs.  A sliding window
        # evicts about as many entries as it creates per step, so
        # steady-state combines write into recently-hot buffers instead
        # of faulting in fresh pages — that, not the AND itself,
        # dominates at 2^19 bits.  Word buffers are 8x smaller than the
        # seed's bool buffers, so the pool's cap costs 1/8th the RAM.
        self._pools: Dict[int, List[np.ndarray]] = {}
        # Entries handed to callers by range_join: their buffers must
        # never be recycled (the caller may still hold the bitmap).
        self._escaped: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def start(self) -> int:
        """The oldest position still resident."""
        return self._base

    @property
    def stop(self) -> int:
        """One past the newest appended position."""
        return self._base + len(self._bitmaps)

    def __len__(self) -> int:
        """Number of resident positions."""
        return len(self._bitmaps)

    @property
    def cached_joins(self) -> int:
        """Memoized table entries above level 0 (for tests/benchmarks)."""
        return len(self._table)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def append(self, bitmap: Bitmap) -> int:
        """Append the next period's bitmap; returns its position."""
        if not bitmap.is_power_of_two_sized:
            raise SketchError(
                f"interval index requires power-of-two bitmap sizes, "
                f"got {bitmap.size}"
            )
        self._bitmaps.append(bitmap)
        return self.stop - 1

    def evict_before(self, position: int) -> int:
        """Release bitmaps and table entries before ``position``.

        Positions below ``position`` become unqueryable; returns how
        many level-0 bitmaps were dropped.  Call this as a window
        slides so memory stays O(window · log window).
        """
        drop = min(int(position), self.stop) - self._base
        if drop <= 0:
            return 0
        del self._bitmaps[:drop]
        self._base += drop
        kept: Dict[Tuple[int, int], Bitmap] = {}
        for key, value in self._table.items():
            if key[1] >= self._base:
                kept[key] = value
                continue
            if key in self._escaped:
                self._escaped.discard(key)
                continue
            rep = value._rep
            if rep.kind != "dense":
                continue
            pool = self._pools.setdefault(value.size, [])
            if len(pool) < _POOL_LIMIT:
                pool.append(rep.words)
        self._table = kept
        return drop

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def _combine(self, left: Bitmap, right: Bitmap) -> Bitmap:
        """AND two table entries, bit-identical to ``and_join``.

        Equal-size pairs — every pair in a same-sized-records window,
        i.e. the production monitoring case — take one bulk
        ``np.bitwise_and`` over the backing arrays: a single vectorized
        pass, with none of the general join path's size normalization,
        tiling-factor checks, or accumulator seeding copy.  The output
        lands in a buffer recycled from an evicted entry when one is
        available (see :meth:`evict_before`) — at production sizes the
        page faults of a fresh kept-alive allocation cost several
        times the AND itself.  Accounting matches :func:`and_join`
        exactly (one ``and`` op, ``2·size`` bits, and no expansion
        group since the sizes agree).  Mixed-size pairs fall back to
        the general join.
        """
        if left.size != right.size:
            return and_join([left, right])
        if obs.ACTIVE:
            cell = _JOINS.cell()
            cell.op_and += 1
            cell.bits += left.size * 2
        pool = self._pools.get(left.size)
        out = (
            pool.pop()
            if pool
            else np.empty(word_count(left.size), dtype=np.uint64)
        )
        np.bitwise_and(left._dense_words(), right._dense_words(), out=out)
        return Bitmap._adopt_words(left.size, out)

    def _entry(self, level: int, start: int) -> Bitmap:
        """The AND-join of the ``2^level`` bitmaps from ``start`` on."""
        if level == 0:
            return self._bitmaps[start - self._base]
        key = (level, start)
        cached = self._table.get(key)
        if cached is None:
            half = 1 << (level - 1)
            cached = self._combine(
                self._entry(level - 1, start),
                self._entry(level - 1, start + half),
            )
            self._table[key] = cached
        return cached

    def range_join(self, start: int, stop: int) -> Bitmap:
        """AND-join of the bitmaps at positions ``[start, stop)``.

        Resolved as at most two (possibly overlapping) table entries —
        idempotence makes the overlap exact — and bit-identical to
        ``and_join(bitmaps[start:stop])``.
        """
        start, stop = int(start), int(stop)
        if start < self._base or stop > self.stop:
            raise SketchError(
                f"range [{start}, {stop}) outside resident positions "
                f"[{self._base}, {self.stop})"
            )
        if start >= stop:
            raise SketchError(f"empty join range [{start}, {stop})")
        span = stop - start
        level = span.bit_length() - 1
        left = self._entry(level, start)
        if span == 1 << level:
            if level:
                # The caller now holds this table entry; its buffer
                # must survive eviction un-recycled.
                self._escaped.add((level, start))
            return left
        right = self._entry(level, stop - (1 << level))
        return self._combine(left, right)


def split_range_join(
    index: IntervalJoinIndex, start: int, stop: int
) -> SplitJoinResult:
    """Section III-B's split-and-join over a contiguous indexed range.

    Bit-identical to ``split_and_join(bitmaps[start:stop])``: the two
    halves come out of the index at their own sub-range maximum sizes
    and are expanded to the range maximum, which equals joining each
    half directly at that size (expansion composes and AND commutes
    with tiling).
    """
    span = int(stop) - int(start)
    if span < 2:
        raise SketchError(
            f"split-and-join needs at least 2 traffic records, got {span}"
        )
    midpoint = (span + 1) // 2  # ceil(t/2), as in split_and_join
    half_a = index.range_join(start, start + midpoint)
    half_b = index.range_join(start + midpoint, stop)
    size = max(half_a.size, half_b.size)
    if obs.ACTIVE:
        cell = _JOINS.cell()
        cell.op_split += 1
        cell.bits += size * span
    half_a = expand_to(half_a, size)
    half_b = expand_to(half_b, size)
    return SplitJoinResult(half_a=half_a, half_b=half_b, joined=half_a & half_b)
