"""Replication-based bitmap expansion (Section III-A, Fig. 2).

A bitmap of size ``l`` is expanded to size ``m`` (both powers of two,
``l <= m``) by tiling it ``m / l`` times.  The key alignment property,
proved in Section III-A of the paper, is::

    if B[h mod l] == 1  then  E[h mod m] == 1   for any hash value h

because ``h mod m = (h mod l) + k·l`` for some integer k when both
sizes are powers of two.  :func:`verify_alignment` checks the property
directly and is used by the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SketchError
from repro.obs import runtime as obs
from repro.obs.metrics import POW2_BUCKETS
from repro.sketch import backends
from repro.sketch.bitmap import Bitmap
from repro.sketch.sizing import is_power_of_two


def expansion_factor(source_size: int, target_size: int) -> int:
    """Number of replications needed to expand ``source`` to ``target``.

    Raises :class:`SketchError` unless both sizes are powers of two and
    ``target_size >= source_size`` — the exact preconditions the paper
    establishes for the alignment property to hold.
    """
    if not is_power_of_two(source_size):
        raise SketchError(f"source size {source_size} is not a power of two")
    if not is_power_of_two(target_size):
        raise SketchError(f"target size {target_size} is not a power of two")
    if target_size < source_size:
        raise SketchError(
            f"cannot expand a bitmap of size {source_size} down to {target_size}"
        )
    return target_size // source_size


#: Bound handle: this is the hottest instrumentation site in the tree
#: (one observation per input bitmap per join), so it is doubly
#: cheapened: joins batch a whole group of same-ratio inputs into one
#: ``observe_many`` call (:func:`observe_expansion_group`), and the
#: histogram samples bucket attribution — count/sum stay exact, only
#: the per-bucket split is approximated (see docs/observability.md).
#: The exact expansion count is ``repro_expansion_ratio_count``; a
#: separate counter series would double the hot-path cost to say the
#: same number.
_EXPANSION_RATIO = obs.bind_histogram(
    "repro_expansion_ratio",
    "Replication factor m/l of each expansion (count = expansions).",
    buckets=POW2_BUCKETS,
    sample_rate=16,
)


def observe_expansion_group(sizes, target: int) -> None:
    """Account one join group's expansion ratios, batched.

    One observation per input that actually expands (``size <
    target``) — an input already at the target size is passed through
    untouched (the paper's "if l_j = m then E_j is simply B_j"), so it
    is not an expansion and costs nothing to account.  The common
    mixed case — every input at one size — collapses into a single
    ``observe_many`` carrying the whole group.  Callers guard with
    ``obs.ACTIVE`` and skip the call entirely when no input expands
    (``min(sizes) == target``); ``sizes`` must be non-empty.
    """
    first = sizes[0]
    for size in sizes:
        if size != first:
            for size in sizes:
                if size != target:
                    _EXPANSION_RATIO.observe(float(target // size))
            return
    if first != target:
        _EXPANSION_RATIO.observe_many(float(target // first), len(sizes))


def expand_to(bitmap: Bitmap, target_size: int) -> Bitmap:
    """Expand ``bitmap`` to ``target_size`` bits by whole replication.

    Returns the input unchanged (as a copy-free reference) when the
    sizes already match, mirroring the paper's "if l_j = m then E_j is
    simply B_j".
    """
    factor = expansion_factor(bitmap.size, target_size)
    if factor == 1:
        return bitmap
    if obs.ACTIVE:
        _EXPANSION_RATIO.observe(factor)
    tiled = backends.tile_words(bitmap._words_view(), bitmap.size, factor)
    return Bitmap._adopt_words(target_size, tiled)


def apply_expanded(out: np.ndarray, bits: np.ndarray, op: np.ufunc) -> None:
    """Combine ``bits`` into ``out`` as if ``bits`` were tile-expanded.

    ``out`` is a boolean accumulator whose last axis has ``m`` bits;
    ``bits`` has ``l`` bits with ``m = k·l`` (both powers of two).
    Instead of materializing the ``k``-fold tiling of ``bits``, ``out``
    is viewed as ``(..., k, l)`` and ``op`` (``np.logical_and`` /
    ``np.logical_or``) is broadcast in place — the alignment property
    guarantees this touches exactly the bits the tiled expansion would.
    Allocation drops from O(m) per input to zero.

    Works on 1-D accumulators (single bitmaps) and on 2-D ``(runs, m)``
    batch matrices, where ``bits`` may be ``(l,)`` or ``(runs, l)``.

    This is a pure kernel: expansion-ratio accounting belongs to the
    caller (joins batch it per input group via
    :func:`observe_expansion_group`), not to every in-place fold.
    """
    factor = expansion_factor(bits.shape[-1], out.shape[-1])
    if factor == 1:
        op(out, bits, out=out)
        return
    view = out.reshape(out.shape[:-1] + (factor, bits.shape[-1]))
    if bits.ndim > 1:
        bits = bits[..., np.newaxis, :]
    op(view, bits, out=view)


def apply_expanded_words(
    out: np.ndarray,
    out_size: int,
    src: np.ndarray,
    src_size: int,
    op: np.ufunc,
) -> None:
    """Word-level :func:`apply_expanded`: fold packed words in place.

    ``out`` is a ``uint64`` accumulator whose last axis holds
    ``out_size`` bits; ``src`` holds ``src_size`` bits with
    ``out_size = k·src_size`` (both powers of two).  ``op`` is
    ``np.bitwise_and``/``np.bitwise_or``.  Sub-word sources are first
    replicated across one word by a multiply (no carries for
    power-of-two patterns), after which the tiling is a reshaped
    broadcast exactly as in the bool kernel — but over 1/8th the bytes.

    Like :func:`apply_expanded` this is a pure kernel; expansion-ratio
    accounting stays with the caller.
    """
    expansion_factor(src_size, out_size)  # validate pow2 + ordering
    backends.apply_expanded_words(out, out_size, src, src_size, op)


def verify_alignment(bitmap: Bitmap, target_size: int, hash_value: int) -> bool:
    """Check the alignment property for one hash value.

    Returns True iff ``B[h mod l] == E[h mod m]`` where ``E`` is the
    expansion of ``B`` to ``target_size``.  The paper proves this holds
    with equality-to-one implication; for power-of-two sizes the two
    bits are literally the same stored bit, so the values always match.
    """
    expanded = expand_to(bitmap, target_size)
    h = int(hash_value)
    return bitmap.get(h % bitmap.size) == expanded.get(h % target_size)
