"""Linear probabilistic counting (Whang, Vander-Zanden & Taylor, 1990).

Eq. 1 of the paper estimates the number of distinct vehicles encoded in
a traffic record from the fraction of zero bits:

    n̂ = -m · ln V_0

The paper also uses the exact finite-``m`` form (Eq. 3):

    n̂ = ln V_0 / ln(1 - 1/m)

Both are provided; the exact form is what the persistent-traffic
estimators build on, and the classic ``-m ln V_0`` form is its
large-``m`` limit.  The standard deviation formula from the original
linear-counting paper is included so callers can reason about expected
accuracy and pick load factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SaturatedBitmapError, SketchError
from repro.sketch.bitmap import Bitmap


def zero_fraction_expectation(n: float, m: int) -> float:
    """Expected fraction of zero bits after encoding ``n`` items.

    Each of ``n`` independent items leaves a given bit zero with
    probability ``(1 - 1/m)``, so E[V_0] = (1 - 1/m)^n.
    """
    if m <= 0:
        raise SketchError(f"bitmap size must be positive, got {m}")
    return (1.0 - 1.0 / m) ** n


def linear_counting_estimate(zero_fraction: float, size: int, exact: bool = True) -> float:
    """Estimate distinct items from the zero fraction of a bitmap.

    Parameters
    ----------
    zero_fraction:
        Measured fraction ``V_0`` of zero bits, in (0, 1].
    size:
        Bitmap size ``m``.
    exact:
        When True (default), use the exact geometric form
        ``ln V_0 / ln(1 - 1/m)`` (Eq. 3 of the paper).  When False, use
        the classic large-``m`` approximation ``-m ln V_0`` (Eq. 1).

    Raises
    ------
    SaturatedBitmapError
        If ``zero_fraction`` is 0 — a saturated bitmap carries no
        counting information (``ln 0`` diverges).
    """
    if size <= 0:
        raise SketchError(f"bitmap size must be positive, got {size}")
    if not 0.0 <= zero_fraction <= 1.0:
        raise SketchError(f"zero fraction must lie in [0, 1], got {zero_fraction}")
    if zero_fraction == 0.0:
        raise SaturatedBitmapError(
            f"bitmap of size {size} is saturated; the linear-counting "
            "estimate diverges (increase the load factor f)"
        )
    if zero_fraction == 1.0:
        return 0.0
    if exact:
        return math.log(zero_fraction) / math.log(1.0 - 1.0 / size)
    return -size * math.log(zero_fraction)


def linear_counting_stddev(n: float, m: int) -> float:
    """Standard deviation of the linear-counting estimator.

    From Whang et al. (1990): for ``n`` items in ``m`` bits with load
    ``t = n/m``,

        StDev(n̂) ≈ sqrt(m · (e^t - t - 1))

    This is used by the analysis layer to sanity-check measured errors
    against theory.
    """
    if m <= 0:
        raise SketchError(f"bitmap size must be positive, got {m}")
    t = n / m
    return math.sqrt(max(m * (math.exp(t) - t - 1.0), 0.0))


@dataclass(frozen=True)
class LinearCountingResult:
    """Outcome of a single linear-counting estimate."""

    estimate: float
    zero_fraction: float
    size: int

    @property
    def load(self) -> float:
        """Estimated load ``n̂ / m``."""
        return self.estimate / self.size


class LinearCounting:
    """Object-style wrapper for estimating counts from bitmaps.

    Useful when the same configuration (exact vs approximate form) is
    applied to many bitmaps, e.g. by the central server summarizing a
    day of traffic records.

    Examples
    --------
    >>> from repro.sketch import Bitmap
    >>> counter = LinearCounting()
    >>> b = Bitmap.from_indices(1024, range(100))
    >>> round(counter.estimate(b).estimate)
    105
    """

    def __init__(self, exact: bool = True):
        self._exact = exact

    @property
    def exact(self) -> bool:
        """Whether the exact geometric form is used."""
        return self._exact

    def estimate(self, bitmap: Bitmap) -> LinearCountingResult:
        """Estimate the number of distinct items encoded in ``bitmap``.

        ``V_0`` comes from :meth:`Bitmap.zero_fraction`, which counts
        set bits on the bitmap's current representation — a popcount
        over packed words for dense bitmaps (hardware
        ``np.bitwise_count`` where available), the index count for
        sparse ones, a run-length sum for RLE — so estimation never
        forces a representation change.
        """
        v0 = bitmap.zero_fraction()
        value = linear_counting_estimate(v0, bitmap.size, exact=self._exact)
        return LinearCountingResult(estimate=value, zero_fraction=v0, size=bitmap.size)

    def estimate_value(self, bitmap: Bitmap) -> float:
        """Like :meth:`estimate` but returns just the number."""
        return self.estimate(bitmap).estimate
