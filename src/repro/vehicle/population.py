"""Array-backed vehicle populations for experiment-scale encoding.

The evaluation encodes up to ~9×10⁵ vehicle passages per simulation
run; per-object vehicles would dominate the runtime.  A
:class:`VehiclePopulation` stores only an id array and derives key
material on demand through a :class:`~repro.crypto.keys.KeyGenerator`,
so the whole population can be hashed in a handful of numpy operations
while remaining bit-for-bit consistent with the scalar
:class:`~repro.vehicle.identity.VehicleIdentity` path.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.crypto.keys import KeyGenerator
from repro.exceptions import ConfigurationError
from repro.sketch.bitmap import Bitmap
from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.identity import VehicleIdentity


class VehiclePopulation:
    """A set of vehicles sharing a key-derivation context.

    Parameters
    ----------
    vehicle_ids:
        Unique uint64 vehicle IDs.
    keygen:
        Derives each vehicle's ``K_v`` and ``C`` deterministically.
    """

    def __init__(
        self,
        vehicle_ids: np.ndarray,
        keygen: KeyGenerator,
        check_unique: bool = True,
    ):
        ids = np.asarray(vehicle_ids, dtype=np.uint64).ravel()
        if check_unique and ids.size != np.unique(ids).size:
            raise ConfigurationError("vehicle IDs must be unique within a population")
        self._ids = ids
        self._keygen = keygen
        self._keys: Optional[np.ndarray] = None
        self._constants: Optional[np.ndarray] = None
        # Per-(encoder, location) cache of the full 64-bit encoded
        # hashes.  A persistent population passes the same location in
        # every measurement period; its hashes never change, only the
        # reduction modulo the period's bitmap size does.
        self._hash_cache: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        count: int,
        keygen: KeyGenerator,
        rng: np.random.Generator,
    ) -> "VehiclePopulation":
        """Draw ``count`` random vehicle IDs uniform over 64 bits.

        A duplicate among ``count`` uniform 64-bit draws has
        probability below ``count² / 2^65`` (about 10⁻⁸ even for a
        million vehicles), so uniqueness is trusted rather than
        enforced — re-verifying it dominated the encoding hot path.
        """
        if count < 0:
            raise ConfigurationError(f"population count must be >= 0, got {count}")
        ids = rng.integers(0, 2**64, size=count, dtype=np.uint64)
        return cls(ids, keygen, check_unique=False)

    @classmethod
    def from_range(
        cls, start: int, count: int, keygen: KeyGenerator
    ) -> "VehiclePopulation":
        """Sequential IDs — handy for deterministic tests."""
        ids = np.arange(start, start + count, dtype=np.uint64)
        return cls(ids, keygen)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of vehicles in the population."""
        return int(self._ids.size)

    @property
    def vehicle_ids(self) -> np.ndarray:
        """The uint64 id array (read-only view)."""
        view = self._ids.view()
        view.flags.writeable = False
        return view

    @property
    def s(self) -> int:
        """Representative bits per vehicle (from the key generator)."""
        return self._keygen.s

    @property
    def keygen(self) -> KeyGenerator:
        """The shared key-derivation context."""
        return self._keygen

    def private_keys(self) -> np.ndarray:
        """Derived ``K_v`` array, memoized."""
        if self._keys is None:
            self._keys = self._keygen.private_keys(self._ids)
        return self._keys

    def constants_matrix(self) -> np.ndarray:
        """Derived ``(n, s)`` constants matrix, memoized."""
        if self._constants is None:
            self._constants = self._keygen.constants_matrix(self._ids)
        return self._constants

    def identity(self, index: int) -> VehicleIdentity:
        """Materialize the scalar identity of vehicle ``index``."""
        return VehicleIdentity.from_generator(int(self._ids[index]), self._keygen)

    def identities(self) -> Iterator[VehicleIdentity]:
        """Iterate scalar identities (small populations / tests only)."""
        for vehicle_id in self._ids:
            yield VehicleIdentity.from_generator(int(vehicle_id), self._keygen)

    # ------------------------------------------------------------------
    # Set-like operations used by the traffic generators
    # ------------------------------------------------------------------

    def subset(self, indices: np.ndarray) -> "VehiclePopulation":
        """A population holding the vehicles at the given positions."""
        return VehiclePopulation(self._ids[np.asarray(indices)], self._keygen)

    def union(self, other: "VehiclePopulation") -> "VehiclePopulation":
        """Union of two disjoint-or-not populations (same keygen)."""
        if other._keygen is not self._keygen:
            raise ConfigurationError(
                "cannot union populations with different key generators"
            )
        ids = np.unique(np.concatenate([self._ids, other._ids]))
        return VehiclePopulation(ids, self._keygen)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encoded_hashes(
        self, location: int, encoder: VehicleEncoder
    ) -> np.ndarray:
        """Full 64-bit encoded hashes of the population at ``location``.

        Uses the fused single-pass derivation (choice → chosen constant
        → hash) and caches the result per (encoder, location): a
        persistent population re-encoding at the same location in a
        later period costs only a modulo reduction.
        """
        key = (id(encoder), int(location))
        cached = self._hash_cache.get(key)
        if cached is not None:
            return cached
        choices = encoder.constant_choices(self._ids, location, self.s)
        chosen = self._keygen.chosen_constants(self._ids, choices)
        hashes = encoder.hashes_from_chosen(self._ids, self.private_keys(), chosen)
        self._hash_cache[key] = hashes
        return hashes

    def encode_into(
        self, bitmap: Bitmap, location: int, encoder: VehicleEncoder
    ) -> None:
        """Encode every vehicle in the population into ``bitmap``.

        Equivalent to the whole population driving past the RSU at
        ``location`` during one measurement period.
        """
        if self.size == 0:
            return
        # encoding_indices already reduces modulo bitmap.size.
        bitmap.set_many(
            self.encoding_indices(location, bitmap.size, encoder),
            assume_in_range=True,
        )

    def encoding_indices(
        self, location: int, size: int, encoder: VehicleEncoder
    ) -> np.ndarray:
        """Bit indices the population would set at ``location``."""
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        hashes = self.encoded_hashes(location, encoder)
        return (hashes % np.uint64(size)).astype(np.int64)
