"""Vehicle identity: the triple (``v``, ``K_v``, ``C``).

Section II-D: a vehicle holds a unique ID ``v``, a private key ``K_v``
known only to itself, and an array ``C`` of ``s`` randomly selected
constants, also private.  The ID is never transmitted; everything the
vehicle sends is a hash output derived from this material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.crypto.keys import KeyGenerator, generate_constants, generate_private_key
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class VehicleIdentity:
    """The private identity material of one vehicle.

    Attributes
    ----------
    vehicle_id:
        The unique ID ``v`` (e.g. derived from the VIN).  Never
        transmitted to any RSU.
    private_key:
        The private key ``K_v``, known only to the vehicle.
    constants:
        The array ``C`` of ``s`` random constants, known only to the
        vehicle.  Its length ``s`` bounds how many distinct
        representative bits the vehicle can map to in a bitmap.
    """

    vehicle_id: int
    private_key: int
    constants: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.constants) < 1:
            raise ConfigurationError("a vehicle needs at least one constant (s >= 1)")

    @property
    def s(self) -> int:
        """The number of constants (representative bits per bitmap)."""
        return len(self.constants)

    @classmethod
    def random(
        cls, vehicle_id: int, s: int, rng: np.random.Generator
    ) -> "VehicleIdentity":
        """Draw fresh random key material for a vehicle."""
        return cls(
            vehicle_id=int(vehicle_id),
            private_key=generate_private_key(rng),
            constants=tuple(generate_constants(rng, s)),
        )

    @classmethod
    def from_generator(cls, vehicle_id: int, keygen: KeyGenerator) -> "VehicleIdentity":
        """Derive the identity deterministically from a key generator.

        This is how the array-backed population and the scalar identity
        stay mutually consistent: both derive ``K_v`` and ``C`` through
        the same :class:`~repro.crypto.keys.KeyGenerator`.
        """
        return cls(
            vehicle_id=int(vehicle_id),
            private_key=keygen.private_key(vehicle_id),
            constants=tuple(keygen.constants(vehicle_id)),
        )
