"""The vehicle-encoding algorithm of Section II-D.

A vehicle ``v`` passing the RSU at location ``L`` with bitmap size
``m`` computes::

    i   = H(L ⊕ v) mod s                (which constant to use)
    h_v = H(v ⊕ K_v ⊕ C[i]) mod m       (the bit index it transmits)

The ``s`` values ``h_v(i) = H(v ⊕ K_v ⊕ C[i]) mod m`` are the
vehicle's *representative bits* in a bitmap of size ``m``; the location
deterministically selects one of them.  Two properties drive the whole
paper:

* At a fixed location the selection ``i`` never changes, so a vehicle
  sets bits derived from the *same* 64-bit hash in every measurement
  period — which is why AND-joins retain common vehicles even when the
  bitmap size differs across periods (power-of-two alignment).
* Across locations the selection varies uniformly over ``s`` choices,
  which is the source of the privacy noise analysed in Section V.

:class:`VehicleEncoder` exposes the scalar form (used by the on-board
unit protocol) and a fully vectorized form over numpy arrays (used by
the experiment harness to encode whole populations at once).  Both are
exercised against each other in the test suite.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.crypto.hashing import Hasher, default_hasher, xor_fold
from repro.exceptions import ConfigurationError
from repro.sketch.bitmap import Bitmap
from repro.vehicle.identity import VehicleIdentity


class VehicleEncoder:
    """Computes bit indices for vehicles, scalar and vectorized.

    Parameters
    ----------
    hasher:
        The hash function ``H``.  Defaults to the fast vectorized
        splitmix64 flavour; pass a
        :class:`~repro.crypto.hashing.Sha256Hasher` for the
        byte-faithful protocol path.
    """

    def __init__(self, hasher: Hasher = None):
        self._hasher = hasher if hasher is not None else default_hasher()

    @property
    def hasher(self) -> Hasher:
        """The underlying hash function ``H``."""
        return self._hasher

    # ------------------------------------------------------------------
    # Scalar path (protocol-faithful)
    # ------------------------------------------------------------------

    def constant_choice(self, identity: VehicleIdentity, location: int) -> int:
        """The index ``i = H(L ⊕ v) mod s`` selecting which constant."""
        return self._hasher.hash_int(xor_fold(location, identity.vehicle_id)) % identity.s

    def encoded_hash(self, identity: VehicleIdentity, location: int) -> int:
        """The full 64-bit hash ``H(v ⊕ K_v ⊕ C[i])`` before ``mod m``.

        Exposing the un-reduced hash matters: the alignment property of
        bitmap expansion is a statement about one hash value reduced by
        different power-of-two moduli.
        """
        choice = self.constant_choice(identity, location)
        return self._hasher.hash_int(
            xor_fold(
                identity.vehicle_id,
                identity.private_key,
                identity.constants[choice],
            )
        )

    def encoding_index(self, identity: VehicleIdentity, location: int, size: int) -> int:
        """The transmitted index ``h_v`` for a bitmap of ``size`` bits."""
        if size <= 0:
            raise ConfigurationError(f"bitmap size must be positive, got {size}")
        return self.encoded_hash(identity, location) % int(size)

    def representative_bits(
        self, identity: VehicleIdentity, size: int
    ) -> List[int]:
        """All ``s`` representative bit indices of a vehicle.

        ``h_v(i) = H(v ⊕ K_v ⊕ C[i]) mod m`` for each constant.  Note
        these do not depend on the location — only the *choice among
        them* does.
        """
        if size <= 0:
            raise ConfigurationError(f"bitmap size must be positive, got {size}")
        return [
            self._hasher.hash_int(
                xor_fold(identity.vehicle_id, identity.private_key, constant)
            )
            % int(size)
            for constant in identity.constants
        ]

    def encode(self, identity: VehicleIdentity, location: int, bitmap: Bitmap) -> int:
        """Encode one vehicle into a bitmap; returns the index set."""
        index = self.encoding_index(identity, location, bitmap.size)
        bitmap.set(index)
        return index

    # ------------------------------------------------------------------
    # Vectorized path (experiment-scale)
    # ------------------------------------------------------------------

    def constant_choices(
        self, vehicle_ids: np.ndarray, location: int, s: int
    ) -> np.ndarray:
        """Vectorized :meth:`constant_choice`: ``i = H(L ⊕ v) mod s``."""
        if s < 1:
            raise ConfigurationError(f"s must be >= 1, got {s}")
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        return self._hasher.hash_array(ids ^ np.uint64(location)) % np.uint64(s)

    def hashes_from_chosen(
        self,
        vehicle_ids: np.ndarray,
        private_keys: np.ndarray,
        chosen_constants: np.ndarray,
    ) -> np.ndarray:
        """Full 64-bit hashes given each vehicle's chosen constant.

        The fused hot path: combined with
        :meth:`~repro.crypto.keys.KeyGenerator.chosen_constants`, it
        computes the same values as :meth:`encoded_hash_array` without
        materializing the ``(n, s)`` constants matrix.
        """
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        keys = np.asarray(private_keys, dtype=np.uint64)
        chosen = np.asarray(chosen_constants, dtype=np.uint64)
        return self._hasher.hash_array(ids ^ keys ^ chosen)

    def encoded_hash_array_fused(
        self, vehicle_ids: np.ndarray, location: int, keygen
    ) -> np.ndarray:
        """One-pass encoded hashes for a raw id array (batch hot path).

        Bit-identical to composing :meth:`constant_choices` →
        :meth:`~repro.crypto.keys.KeyGenerator.chosen_constants` →
        :meth:`~repro.crypto.keys.KeyGenerator.private_keys` →
        :meth:`hashes_from_chosen`, but every hash runs in place on
        scratch buffers, so a whole Monte-Carlo cell's vehicles hash
        with a handful of allocations.  ``vehicle_ids`` is only read.
        """
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        choices = self._hasher.hash_array_inplace(ids ^ np.uint64(location))
        choices %= np.uint64(keygen.s)
        tags = keygen.chosen_tags_inplace(choices)
        tags ^= ids
        chosen = keygen.hasher.hash_array_inplace(tags)
        keys = keygen.private_keys_inplace(ids.copy())
        keys ^= ids
        keys ^= chosen
        return self._hasher.hash_array_inplace(keys)

    def encoded_hash_array(
        self,
        vehicle_ids: np.ndarray,
        private_keys: np.ndarray,
        constants: np.ndarray,
        location: int,
    ) -> np.ndarray:
        """Vectorized :meth:`encoded_hash` for a whole population.

        Parameters
        ----------
        vehicle_ids:
            ``(n,)`` uint64 array of vehicle IDs.
        private_keys:
            ``(n,)`` uint64 array of private keys ``K_v``.
        constants:
            ``(n, s)`` uint64 matrix; row ``j`` is vehicle ``j``'s
            constants array ``C``.
        location:
            The location ID ``L``.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` uint64 array of full 64-bit encoded hashes.
        """
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        keys = np.asarray(private_keys, dtype=np.uint64)
        consts = np.asarray(constants, dtype=np.uint64)
        if consts.ndim != 2 or consts.shape[0] != ids.shape[0]:
            raise ConfigurationError(
                f"constants matrix must be (n, s) with n={ids.shape[0]}, "
                f"got shape {consts.shape}"
            )
        s = consts.shape[1]
        choice = self._hasher.hash_array(ids ^ np.uint64(location)) % np.uint64(s)
        chosen = consts[np.arange(ids.shape[0]), choice.astype(np.intp)]
        return self._hasher.hash_array(ids ^ keys ^ chosen)

    def encoding_indices(
        self,
        vehicle_ids: np.ndarray,
        private_keys: np.ndarray,
        constants: np.ndarray,
        location: int,
        size: int,
    ) -> np.ndarray:
        """Vectorized :meth:`encoding_index`: ``(n,)`` int64 indices."""
        hashes = self.encoded_hash_array(vehicle_ids, private_keys, constants, location)
        return (hashes % np.uint64(size)).astype(np.int64)

    def encode_population(
        self,
        vehicle_ids: np.ndarray,
        private_keys: np.ndarray,
        constants: np.ndarray,
        location: int,
        bitmap: Bitmap,
    ) -> None:
        """Encode a whole population into ``bitmap`` in one shot."""
        indices = self.encoding_indices(
            vehicle_ids, private_keys, constants, location, bitmap.size
        )
        # Indices are already reduced modulo bitmap.size; skip the scan.
        bitmap.set_many(indices, assume_in_range=True)
