"""The on-board unit (OBU): the vehicle side of the V2I protocol.

Section II-B/II-D end to end, from the vehicle's point of view:

1. receive a beacon carrying the RSU's location ``L``, its public-key
   certificate, and its bitmap size ``m``;
2. verify the certificate against the pre-installed trust anchor — if
   it fails, *stay silent* (rogue RSU);
3. challenge the RSU to prove possession of the certified key;
4. pick a one-time random MAC address (SpoofMAC);
5. compute ``h_v`` and transmit it to the RSU.

The OBU never transmits its vehicle ID, its private key, its constants,
or any fixed number.  The only payload is a bit index, sent under a
fresh MAC address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.mac import AnonymousMacGenerator
from repro.crypto.pki import (
    Certificate,
    check_challenge_answer,
    verify_certificate,
)
from repro.exceptions import AuthenticationError
from repro.rsu.beacon import Beacon, EncodingReport
from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.identity import VehicleIdentity


@dataclass(frozen=True)
class ObuStats:
    """Counters describing what an OBU did over its lifetime."""

    beacons_heard: int
    beacons_rejected: int
    reports_sent: int


class OnBoardUnit:
    """Protocol state machine run inside one vehicle.

    Parameters
    ----------
    identity:
        The vehicle's private identity material.
    trust_anchor:
        The trusted third party's verification key, pre-installed.
    encoder:
        The hash-encoding implementation (shared with RSUs only in the
        sense that both use the same public hash function ``H``).
    mac_seed:
        Seed for the one-time MAC generator.
    """

    def __init__(
        self,
        identity: VehicleIdentity,
        trust_anchor: bytes,
        encoder: VehicleEncoder,
        mac_seed: int = 0,
    ):
        self._identity = identity
        self._trust_anchor = trust_anchor
        self._encoder = encoder
        self._mac = AnonymousMacGenerator(mac_seed)
        self._rng = np.random.default_rng(mac_seed ^ 0xB0A7)
        self._beacons_heard = 0
        self._beacons_rejected = 0
        self._reports_sent = 0

    @property
    def identity(self) -> VehicleIdentity:
        """The vehicle's identity (never transmitted)."""
        return self._identity

    @property
    def stats(self) -> ObuStats:
        """Lifetime protocol counters."""
        return ObuStats(
            beacons_heard=self._beacons_heard,
            beacons_rejected=self._beacons_rejected,
            reports_sent=self._reports_sent,
        )

    def make_challenge(self) -> bytes:
        """Draw a fresh nonce for challenge-response authentication."""
        return self._rng.bytes(16)

    def verify_beacon(self, beacon: Beacon) -> bool:
        """Certificate check of step 2; False means 'stay silent'."""
        return verify_certificate(beacon.certificate, self._trust_anchor)

    def respond_to_beacon(
        self,
        beacon: Beacon,
        challenge_answer: Optional[bytes] = None,
        rsu_private_key: Optional[bytes] = None,
        challenge: Optional[bytes] = None,
    ) -> Optional[EncodingReport]:
        """Run the full vehicle-side protocol for one beacon.

        Returns the encoding report to transmit, or ``None`` when the
        RSU failed verification and the vehicle stays silent.  The
        optional challenge-response arguments let callers exercise the
        authentication exchange; when omitted, certificate verification
        alone gates the response (the common fast path in simulation).
        """
        self._beacons_heard += 1
        if not self.verify_beacon(beacon):
            self._beacons_rejected += 1
            return None
        if challenge_answer is not None:
            if challenge is None or rsu_private_key is None:
                raise AuthenticationError(
                    "challenge verification requires both the challenge and "
                    "the RSU key material"
                )
            ok = check_challenge_answer(
                beacon.certificate, challenge, challenge_answer, rsu_private_key
            )
            if not ok:
                self._beacons_rejected += 1
                return None
        index = self._encoder.encoding_index(
            self._identity, beacon.location, beacon.bitmap_size
        )
        self._reports_sent += 1
        return EncodingReport(
            source_mac=self._mac.next_address(),
            location=beacon.location,
            index=index,
        )
