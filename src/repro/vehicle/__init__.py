"""Vehicle-side model: identities, bit encoding, and the on-board unit.

* :mod:`repro.vehicle.identity` — the paper's vehicle triple
  (ID ``v``, private key ``K_v``, constants array ``C``).
* :mod:`repro.vehicle.encoder` — the encoding of Section II-D that maps
  a vehicle at a location to a bit index, with both a scalar and a
  vectorized implementation, plus the representative-bits machinery.
* :mod:`repro.vehicle.onboard` — the protocol state machine a vehicle
  runs when it hears a beacon (verify certificate → authenticate →
  transmit index under a one-time MAC address).
* :mod:`repro.vehicle.population` — array-backed populations of many
  vehicles for the large-scale experiments.
"""

from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.identity import VehicleIdentity
from repro.vehicle.onboard import OnBoardUnit
from repro.vehicle.population import VehiclePopulation

__all__ = [
    "OnBoardUnit",
    "VehicleEncoder",
    "VehicleIdentity",
    "VehiclePopulation",
]
