"""Point-to-point persistent traffic estimation (Section IV, Eq. 21).

Given traffic records from two locations over the same ``t`` periods,
the estimator:

1. AND-joins the records within each location (first-level join),
   producing ``E_*`` of size ``m`` and ``E'_*`` of size ``m'`` with
   ``m <= m'`` (swapping if needed);
2. expands ``E_*`` to ``m'`` by replication → ``S_*`` and ORs it with
   ``E'_*`` → ``E''_*`` (second-level join; OR because it admits a
   closed-form estimator where AND does not — Section IV-A);
3. abstracts each location's AND-join as an independent population
   (``n`` and ``n'`` vehicles via linear counting) containing the
   ``n''`` point-to-point common vehicles, and inverts the occupancy
   equation

       E(V''_0) = (1 + 1/(s·m' − s))^{n''} · V_0 · V'_0     (Eq. 19)

   using ``ln(1+x) ≈ x`` for large ``m'``:

       n̂'' = s·m'·(ln V''_0 − ln V_0 − ln V'_0)            (Eq. 21)

The ``(1 + 1/(s·m'-s))^{n''}`` factor comes from the representative-bit
mechanism: a common vehicle sets *aligned* bits at the two locations
only with probability ``1/m + (1-1/m)(1/s)(…)``, and the derivation in
Section IV-B collapses the combined common/transient probabilities into
that closed form.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.point import RecordLike, _as_bitmaps
from repro.core.results import PointToPointEstimate
from repro.exceptions import ConfigurationError, EstimationError, SaturatedBitmapError
from repro.sketch.batch import BitmapBatch, two_level_join_batch
from repro.sketch.bitmap import Bitmap
from repro.sketch.join import two_level_join, two_level_join_from_joined


def point_to_point_estimate_from_statistics(
    v_0: float,
    v_prime_0: float,
    v_double_prime_0: float,
    size_large: int,
    s: int,
    approximate: bool = True,
) -> float:
    """Evaluate Eq. 21 (or its exact pre-approximation form).

    Parameters
    ----------
    v_0, v_prime_0:
        Zero fractions of the per-location AND-joins ``E_*``, ``E'_*``.
    v_double_prime_0:
        Zero fraction of the OR-join ``E''_*``.
    size_large:
        The larger bitmap size ``m'``.
    s:
        The representative-bit parameter.
    approximate:
        True (default) evaluates the paper's Eq. 21, which applies
        ``ln(1+x) ≈ x``.  False inverts Eq. 19 exactly with
        ``log1p(1/(s·m'-s))`` — an extension useful for small bitmaps.
    """
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    if v_0 <= 0.0 or v_prime_0 <= 0.0:
        raise SaturatedBitmapError(
            "a per-location AND-join is saturated; increase the load factor f"
        )
    if v_double_prime_0 <= 0.0:
        raise SaturatedBitmapError("the OR-join E''_* is saturated")
    log_ratio = (
        math.log(v_double_prime_0) - math.log(v_0) - math.log(v_prime_0)
    )
    if approximate:
        return s * size_large * log_ratio
    denominator = math.log1p(1.0 / (s * size_large - s))
    if denominator <= 0.0:
        raise EstimationError(
            f"degenerate configuration: s={s}, m'={size_large} give a "
            "non-positive inversion denominator"
        )
    return log_ratio / denominator


class PointToPointPersistentEstimator:
    """Estimates persistent traffic between two locations.

    Parameters
    ----------
    s:
        The system-wide representative-bit parameter (the size of each
        vehicle's constants array ``C``).  Must match the value the
        vehicles encode with; the paper uses ``s = 3`` throughout its
        evaluation.
    approximate:
        Use the paper's Eq. 21 (default) or the exact inversion of
        Eq. 19.
    """

    def __init__(self, s: int, approximate: bool = True):
        if s < 1:
            raise ConfigurationError(f"s must be >= 1, got {s}")
        self._s = int(s)
        self._approximate = bool(approximate)

    @property
    def s(self) -> int:
        """The representative-bit parameter."""
        return self._s

    def estimate(
        self,
        records_a: Sequence[RecordLike],
        records_b: Sequence[RecordLike],
    ) -> PointToPointEstimate:
        """Estimate common vehicles passing both locations every period.

        Parameters
        ----------
        records_a, records_b:
            Traffic records from locations ``L`` and ``L'`` over the
            same measurement periods (one record per period each).

        Raises
        ------
        EstimationError / SaturatedBitmapError
            When joins are saturated or statistics degenerate.
        SketchError
            On empty record sets or non-power-of-two sizes.
        """
        if len(records_a) != len(records_b):
            raise ConfigurationError(
                f"the two locations must cover the same periods; got "
                f"{len(records_a)} vs {len(records_b)} records"
            )
        joined = two_level_join(_as_bitmaps(records_a), _as_bitmaps(records_b))
        return self._estimate_from_result(joined, len(records_a))

    def estimate_from_joins(
        self, joined_a: Bitmap, joined_b: Bitmap, periods: int
    ) -> PointToPointEstimate:
        """Evaluate Eq. 21 on precomputed per-location AND-joins.

        ``joined_a`` / ``joined_b`` are the first-level AND-joins
        ``E_*`` / ``E'_*`` of the two locations' records over the same
        ``periods`` measurement periods — exactly what the query-plan
        cache memoizes.  Only the second-level expansion and OR runs
        here, and the result is bit-identical to :meth:`estimate` on
        the underlying records (the first-level join is
        order-independent, so a cached join is the same bitmap).
        """
        return self._estimate_from_result(
            two_level_join_from_joined(joined_a, joined_b), int(periods)
        )

    def _estimate_from_result(self, joined, periods: int) -> PointToPointEstimate:
        v_0 = joined.location_a.zero_fraction()
        v_prime_0 = joined.location_b.zero_fraction()
        v_double_prime_0 = joined.joined.zero_fraction()
        estimate = point_to_point_estimate_from_statistics(
            v_0,
            v_prime_0,
            v_double_prime_0,
            joined.size,
            self._s,
            approximate=self._approximate,
        )
        return PointToPointEstimate(
            estimate=estimate,
            v_0=v_0,
            v_prime_0=v_prime_0,
            v_double_prime_0=v_double_prime_0,
            size_small=joined.location_a.size,
            size_large=joined.size,
            s=self._s,
            periods=periods,
            swapped=joined.swapped,
        )


    def estimate_batch(
        self,
        batches_a: Sequence[BitmapBatch],
        batches_b: Sequence[BitmapBatch],
    ) -> List[PointToPointEstimate]:
        """Estimate every stacked run of a two-location cell at once.

        ``batches_a[p]`` / ``batches_b[p]`` hold period ``p``'s bitmaps
        for all runs at the two locations; returns one
        :class:`PointToPointEstimate` per run, bit-identical to
        :meth:`estimate` on the corresponding scalar records.
        """
        if len(batches_a) != len(batches_b):
            raise ConfigurationError(
                f"the two locations must cover the same periods; got "
                f"{len(batches_a)} vs {len(batches_b)} records"
            )
        joined = two_level_join_batch(batches_a, batches_b)
        v_0 = joined.location_a.zero_fractions().tolist()
        v_prime_0 = joined.location_b.zero_fractions().tolist()
        v_double_prime_0 = joined.joined.zero_fractions().tolist()
        size_small = joined.location_a.size
        size_large = joined.joined.size
        periods = len(batches_a)
        results = []
        for run, (v, vp, vpp) in enumerate(
            zip(v_0, v_prime_0, v_double_prime_0)
        ):
            try:
                value = point_to_point_estimate_from_statistics(
                    v, vp, vpp, size_large, self._s,
                    approximate=self._approximate,
                )
            except EstimationError as exc:
                # Same typed error as the scalar path, naming the run.
                raise type(exc)(f"run {run}: {exc}") from exc
            results.append(
                PointToPointEstimate(
                    estimate=value,
                    v_0=v,
                    v_prime_0=vp,
                    v_double_prime_0=vpp,
                    size_small=size_small,
                    size_large=size_large,
                    s=self._s,
                    periods=periods,
                    swapped=joined.swapped,
                )
            )
        return results


def estimate_point_to_point_persistent(
    records_a: Sequence[RecordLike],
    records_b: Sequence[RecordLike],
    s: int,
) -> PointToPointEstimate:
    """Convenience function: one-shot point-to-point estimate."""
    return PointToPointPersistentEstimator(s).estimate(records_a, records_b)
