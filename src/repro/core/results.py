"""Typed results for the persistent-traffic estimators.

Every estimate carries the measured bitmap statistics it was computed
from, so callers (and tests) can audit the estimate against the
formulas, and the experiment harness can report intermediate
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PointEstimate:
    """Result of the point persistent traffic estimator (Eq. 12).

    Attributes
    ----------
    estimate:
        The raw estimate ``n̂*`` of common vehicles.  May be slightly
        negative for tiny persistent volumes (measurement noise);
        use :attr:`clamped` when a physical count is needed.
    v_a0:
        Fraction of zeros in ``E_a`` (AND of the first half).
    v_b0:
        Fraction of zeros in ``E_b`` (AND of the second half).
    v_star1:
        Fraction of ones in ``E_*`` (AND of the halves).
    size:
        The common bitmap size ``m`` after expansion.
    periods:
        Number of traffic records joined (the paper's ``t``).
    """

    estimate: float
    v_a0: float
    v_b0: float
    v_star1: float
    size: int
    periods: int

    @property
    def clamped(self) -> float:
        """The estimate floored at zero (counts cannot be negative)."""
        return max(self.estimate, 0.0)

    def relative_error(self, actual: float) -> float:
        """The paper's accuracy metric ``|n̂* - n*| / n*``."""
        if actual <= 0:
            raise ValueError(f"actual volume must be positive, got {actual}")
        return abs(self.estimate - actual) / actual


@dataclass(frozen=True)
class PointToPointEstimate:
    """Result of the point-to-point estimator (Eq. 21).

    Attributes
    ----------
    estimate:
        The raw estimate ``n̂''`` of vehicles passing both locations in
        every period.
    v_0:
        Fraction of zeros in ``E_*`` (AND-join at the smaller-bitmap
        location).
    v_prime_0:
        Fraction of zeros in ``E'_*`` (AND-join at the larger-bitmap
        location).
    v_double_prime_0:
        Fraction of zeros in ``E''_*`` (the OR of the second level).
    size_small:
        The smaller AND-join size ``m``.
    size_large:
        The larger AND-join size ``m'`` (the OR-join size).
    s:
        The representative-bit parameter used in the formula.
    periods:
        Number of measurement periods ``t``.
    swapped:
        True when the caller's (L, L') order was internally swapped to
        satisfy the paper's w.l.o.g. assumption ``m <= m'``.
    """

    estimate: float
    v_0: float
    v_prime_0: float
    v_double_prime_0: float
    size_small: int
    size_large: int
    s: int
    periods: int
    swapped: bool

    @property
    def clamped(self) -> float:
        """The estimate floored at zero."""
        return max(self.estimate, 0.0)

    def relative_error(self, actual: float) -> float:
        """The paper's accuracy metric ``|n̂'' - n''| / n''``."""
        if actual <= 0:
            raise ValueError(f"actual volume must be positive, got {actual}")
        return abs(self.estimate - actual) / actual
