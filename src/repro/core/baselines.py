"""Baseline methods the paper compares against.

* :class:`DirectAndBenchmark` — the Fig. 4 benchmark: AND-join all
  ``t`` records and apply plain linear counting to the result,
  ``n̂* = ln V*_0 / ln(1 - 1/m)``.  Transient hash collisions that
  survive the AND inflate this estimate, which is exactly the failure
  mode the proposed two-half estimator corrects.
* :class:`ExactIdCounter` — the non-private strawman from the
  introduction: every vehicle reports its unique ID and the server
  intersects ID sets.  Perfectly accurate, zero privacy.  Used as
  ground truth in integration tests and as the privacy foil in the
  examples.

The Table I "same-size bitmaps" baseline is a *sizing policy*, not a
different estimator: both locations use the smaller location's bitmap
size.  It lives in the workload layer
(:func:`repro.traffic.workloads.same_size_sizing`) and is evaluated
through the ordinary point-to-point estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.core.point import RecordLike, _as_bitmaps
from repro.exceptions import EstimationError
from repro.sketch.batch import BitmapBatch, and_join_batch
from repro.sketch.join import and_join
from repro.sketch.linear_counting import linear_counting_estimate


@dataclass(frozen=True)
class DirectAndEstimate:
    """Result of the direct AND-join benchmark."""

    estimate: float
    v_star0: float
    size: int
    periods: int

    @property
    def clamped(self) -> float:
        """The estimate floored at zero."""
        return max(self.estimate, 0.0)

    def relative_error(self, actual: float) -> float:
        """The paper's accuracy metric ``|n̂ - n| / n``."""
        if actual <= 0:
            raise ValueError(f"actual volume must be positive, got {actual}")
        return abs(self.estimate - actual) / actual


class DirectAndBenchmark:
    """Fig. 4's benchmark: linear counting straight on the AND-join."""

    def estimate(self, records: Sequence[RecordLike]) -> DirectAndEstimate:
        """AND-join all records and linear-count the result."""
        bitmaps = _as_bitmaps(records)
        return self.estimate_from_join(and_join(bitmaps), len(bitmaps))

    def estimate_from_join(self, joined, periods: int) -> DirectAndEstimate:
        """Linear-count a precomputed AND-join of ``periods`` records.

        The query-plan cache memoizes the AND-join; this evaluates the
        same linear-counting formula on it, bit-identical to
        :meth:`estimate` on the raw records.
        """
        v0 = joined.zero_fraction()
        value = linear_counting_estimate(v0, joined.size)
        return DirectAndEstimate(
            estimate=value, v_star0=v0, size=joined.size, periods=int(periods)
        )


    def estimate_batch(
        self, batches: Sequence[BitmapBatch]
    ) -> List[DirectAndEstimate]:
        """AND-join and linear-count every stacked run at once.

        One :class:`DirectAndEstimate` per run, bit-identical to
        :meth:`estimate` on that run's scalar records.
        """
        joined = and_join_batch(batches)
        size = joined.size
        periods = len(batches)
        results = []
        for run, v0 in enumerate(joined.zero_fractions().tolist()):
            try:
                value = linear_counting_estimate(v0, size)
            except EstimationError as exc:
                # Same typed error as the scalar path, naming the run.
                raise type(exc)(f"run {run}: {exc}") from exc
            results.append(
                DirectAndEstimate(
                    estimate=value, v_star0=v0, size=size, periods=periods
                )
            )
        return results


def direct_and_estimate(records: Sequence[RecordLike]) -> DirectAndEstimate:
    """Convenience function for :class:`DirectAndBenchmark`."""
    return DirectAndBenchmark().estimate(records)


class ExactIdCounter:
    """The non-private design: vehicles report IDs, server intersects.

    Section I: "we may require all vehicles to report their unique IDs
    to the RSUs that they encounter ... However, if a vehicle keeps
    transmitting its ID to RSUs, its entire moving history is recorded
    in great details."  This class implements that design so the
    examples can show precisely what the bitmap scheme gives up in
    accuracy (nothing much) and gains in privacy (everything).
    """

    def __init__(self) -> None:
        # (location, period) -> set of vehicle IDs observed.
        self._observations: Dict[tuple, Set[int]] = {}

    def observe(self, location: int, period: int, vehicle_id: int) -> None:
        """Record one ID report (the privacy-invasive operation)."""
        self._observations.setdefault((int(location), int(period)), set()).add(
            int(vehicle_id)
        )

    def observe_many(self, location: int, period: int, vehicle_ids) -> None:
        """Bulk :meth:`observe`."""
        key = (int(location), int(period))
        self._observations.setdefault(key, set()).update(int(v) for v in vehicle_ids)

    def ids_at(self, location: int, period: int) -> Set[int]:
        """The exact ID set recorded at a (location, period)."""
        return set(self._observations.get((int(location), int(period)), set()))

    def point_persistent(self, location: int, periods: Sequence[int]) -> int:
        """Exact point persistent traffic over the given periods."""
        sets = [self.ids_at(location, period) for period in periods]
        if not sets:
            return 0
        common = set.intersection(*sets)
        return len(common)

    def point_to_point_persistent(
        self, location_a: int, location_b: int, periods: Sequence[int]
    ) -> int:
        """Exact point-to-point persistent traffic over the periods."""
        sets = [self.ids_at(location_a, period) for period in periods]
        sets += [self.ids_at(location_b, period) for period in periods]
        if not sets:
            return 0
        common = set.intersection(*sets)
        return len(common)

    def trajectory(self, vehicle_id: int) -> Set[tuple]:
        """Everywhere a vehicle was seen — the privacy hazard itself.

        Returns the full set of (location, period) sightings, i.e. the
        "entire moving history recorded in great details" that the
        bitmap design exists to prevent.
        """
        return {
            key
            for key, ids in self._observations.items()
            if int(vehicle_id) in ids
        }
