"""Path persistent traffic across k >= 2 locations (extension).

The paper estimates persistent traffic between *two* locations; a
natural next question (e.g. corridor studies: "how many vehicles
traverse this whole arterial every workday?") needs the count of
vehicles passing **all k locations in every period**.  This module
generalizes the Section IV derivation to arbitrary k.

Derivation.  AND-join each location's records into ``E_i`` (zero
fraction ``V_i0``, size ``m_i``, powers of two), expand everything to
``M = max m_i`` and OR-join into ``E_or`` (zero fraction ``V_or0``).
Abstract location ``i`` as ``n_i`` independent vehicles containing the
``n_c`` path-common vehicles.  For one common vehicle and one bit
``j`` of ``E_or``:

* at location ``ℓ`` the vehicle sets representative hash ``r_{i_ℓ}``
  reduced mod ``m_ℓ``, where ``i_ℓ = H(L_ℓ ⊕ v) mod s`` — modeled as
  independent uniform choices over the ``s`` constants;
* for the set ``S_c`` of locations that picked constant ``c``, the
  vehicle hits bit ``j`` at *some* location of ``S_c`` iff
  ``r_c ≡ j (mod min_{ℓ∈S_c} m_ℓ)`` (nested power-of-two moduli:
  congruence mod a larger size implies congruence mod a smaller one),
  an event of probability ``1 / min_{ℓ∈S_c} m_ℓ``;
* so ``P(common vehicle avoids bit j) =
  E_choices[ Π_{distinct c} (1 − 1/min_{ℓ∈S_c} m_ℓ) ] =: P₁``,
  computed exactly by enumerating the ``s^k`` choice assignments.

With transients contributing ``Π_i (1−1/m_i)^{n_i−n_c}``,

    E(V_or0) = ρ^{n_c} · Π_i V_i0,   ρ = P₁ / Π_i (1 − 1/m_i)  (>= 1)

    n̂_c = (ln V_or0 − Σ_i ln V_i0) / ln ρ

For k = 2 this reduces exactly to Eq. 19/21 (``ln ρ ≈ 1/(s·m')``),
which the test suite checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import List, Sequence

from repro.core.point import RecordLike, _as_bitmaps
from repro.exceptions import ConfigurationError, EstimationError, SaturatedBitmapError
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import expand_to
from repro.sketch.join import and_join, or_join

#: Enumerating s^k assignments is exact but exponential; cap the
#: product so a mistaken call cannot hang (5^8 ≈ 4·10⁵ is still fine).
_MAX_ASSIGNMENTS = 500_000


@dataclass(frozen=True)
class PathEstimate:
    """Result of the k-location path-persistent estimator."""

    estimate: float
    location_zero_fractions: List[float]
    v_or0: float
    sizes: List[int]
    s: int
    periods: int

    @property
    def k(self) -> int:
        """Number of locations on the path."""
        return len(self.sizes)

    @property
    def clamped(self) -> float:
        """The estimate floored at zero."""
        return max(self.estimate, 0.0)

    def relative_error(self, actual: float) -> float:
        """Relative error against a known truth."""
        if actual <= 0:
            raise ValueError(f"actual volume must be positive, got {actual}")
        return abs(self.estimate - actual) / actual


def common_avoidance_probability(sizes: Sequence[int], s: int) -> float:
    """The P₁ of the derivation above, computed exactly.

    Probability that one path-common vehicle leaves a given aligned
    bit of the OR-join untouched at every one of the k locations.
    """
    k = len(sizes)
    if k < 1:
        raise ConfigurationError("need at least one location")
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    if s**k > _MAX_ASSIGNMENTS:
        raise ConfigurationError(
            f"s^k = {s}^{k} assignments exceed the enumeration cap; "
            "this estimator targets corridor-scale k"
        )
    total = 0.0
    for assignment in product(range(s), repeat=k):
        groups = {}
        for location, constant in enumerate(assignment):
            current = groups.get(constant)
            if current is None or sizes[location] < current:
                groups[constant] = sizes[location]
        probability = 1.0
        for min_size in groups.values():
            probability *= 1.0 - 1.0 / min_size
        total += probability
    return total / (s**k)


def path_estimate_from_statistics(
    zero_fractions: Sequence[float],
    v_or0: float,
    sizes: Sequence[int],
    s: int,
) -> float:
    """Invert ``E(V_or0) = ρ^{n_c} · Π V_i0`` for ``n_c``."""
    if len(zero_fractions) != len(sizes):
        raise ConfigurationError("one zero fraction per location is required")
    if len(sizes) < 2:
        raise ConfigurationError("a path needs at least two locations")
    if any(v <= 0.0 for v in zero_fractions):
        raise SaturatedBitmapError(
            "a location's AND-join is saturated; increase the load factor f"
        )
    if v_or0 <= 0.0:
        raise SaturatedBitmapError("the OR-join is saturated")
    p1 = common_avoidance_probability(sizes, s)
    independent = 1.0
    for size in sizes:
        independent *= 1.0 - 1.0 / size
    log_rho = math.log(p1) - math.log(independent)
    if log_rho <= 0.0:
        raise EstimationError(
            "degenerate configuration: the common-vehicle signature is "
            "not distinguishable from independent traffic"
        )
    log_ratio = math.log(v_or0) - sum(math.log(v) for v in zero_fractions)
    return log_ratio / log_rho


class PathPersistentEstimator:
    """Estimates vehicles traversing all of k locations every period.

    Parameters
    ----------
    s:
        The deployment's representative-bit parameter.
    """

    def __init__(self, s: int):
        if s < 1:
            raise ConfigurationError(f"s must be >= 1, got {s}")
        self._s = int(s)

    @property
    def s(self) -> int:
        """The representative-bit parameter."""
        return self._s

    def estimate(
        self, records_per_location: Sequence[Sequence[RecordLike]]
    ) -> PathEstimate:
        """Estimate path-persistent traffic from per-location records.

        Parameters
        ----------
        records_per_location:
            One record sequence per location, all covering the same
            measurement periods.
        """
        if len(records_per_location) < 2:
            raise ConfigurationError("a path needs at least two locations")
        period_counts = {len(records) for records in records_per_location}
        if len(period_counts) != 1:
            raise ConfigurationError(
                "all locations must cover the same periods; got record "
                f"counts {sorted(period_counts)}"
            )
        joins: List[Bitmap] = [
            and_join(_as_bitmaps(records)) for records in records_per_location
        ]
        target = max(join.size for join in joins)
        expanded = [expand_to(join, target) for join in joins]
        or_joined = or_join(expanded)
        fractions = [join.zero_fraction() for join in joins]
        sizes = [join.size for join in joins]
        estimate = path_estimate_from_statistics(
            fractions, or_joined.zero_fraction(), sizes, self._s
        )
        return PathEstimate(
            estimate=estimate,
            location_zero_fractions=fractions,
            v_or0=or_joined.zero_fraction(),
            sizes=sizes,
            s=self._s,
            periods=period_counts.pop(),
        )
