"""Point persistent traffic estimation (Section III, Eq. 12).

Given ``t`` traffic records from one location, the estimator:

1. expands every bitmap to the maximum size ``m`` (powers of two, so
   replication preserves the common vehicles' bits — Section III-A);
2. splits the expanded records into two halves Π_a and Π_b and
   AND-joins each half into ``E_a`` and ``E_b`` (Section III-B);
3. AND-joins the halves into ``E_*``;
4. abstracts each half as an independent population of
   ``n_a = ln V_a0 / ln(1-1/m)`` (resp. ``n_b``) vehicles that contains
   the common vehicles, and solves the resulting occupancy equation for
   the number of common vehicles:

       n̂* = [ln V_a0 + ln V_b0 − ln(V*_1 + V_a0 + V_b0 − 1)]
            / ln(1 − 1/m)                                      (Eq. 12)

The derivation models each bit of ``E_*`` as set either by a common
vehicle (probability ``P_* = 1-(1-1/m)^{n*}``) or by independent
transient collisions in both halves, giving
``E(V*_1) = 1 - V_a0 - V_b0 + V_a0·V_b0·(1-1/m)^{-n*}`` (Eq. 10),
which Eq. 12 inverts.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

from repro.core.results import PointEstimate
from repro.exceptions import EstimationError, SaturatedBitmapError
from repro.rsu.record import TrafficRecord
from repro.sketch.batch import BitmapBatch, split_and_join_batch
from repro.sketch.bitmap import Bitmap
from repro.sketch.join import SplitJoinResult, split_and_join

RecordLike = Union[TrafficRecord, Bitmap]


def _as_bitmaps(records: Sequence[RecordLike]) -> list:
    """Accept traffic records or raw bitmaps interchangeably."""
    bitmaps = []
    for record in records:
        bitmaps.append(record.bitmap if isinstance(record, TrafficRecord) else record)
    return bitmaps


def point_estimate_from_statistics(
    v_a0: float, v_b0: float, v_star1: float, size: int
) -> float:
    """Evaluate Eq. 12 from measured bitmap statistics.

    Split out so tests can probe the formula directly and the analysis
    layer can study its sensitivity without building bitmaps.
    """
    if v_a0 <= 0.0:
        raise SaturatedBitmapError(
            "E_a is saturated (no zero bits); increase the load factor f"
        )
    if v_b0 <= 0.0:
        raise SaturatedBitmapError(
            "E_b is saturated (no zero bits); increase the load factor f"
        )
    argument = v_star1 + v_a0 + v_b0 - 1.0
    if argument <= 0.0:
        raise EstimationError(
            "inconsistent join statistics: V*_1 + V_a0 + V_b0 - 1 = "
            f"{argument:.6g} <= 0; the joined bitmap has fewer ones than "
            "independent-half collisions alone would produce"
        )
    return (math.log(v_a0) + math.log(v_b0) - math.log(argument)) / math.log(
        1.0 - 1.0 / size
    )


class PointPersistentEstimator:
    """Estimates the persistent traffic volume at a single location.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crypto.keys import KeyGenerator
    >>> from repro.sketch import Bitmap
    >>> from repro.vehicle import VehicleEncoder, VehiclePopulation
    >>> keygen = KeyGenerator(master_seed=7, s=3)
    >>> encoder = VehicleEncoder()
    >>> rng = np.random.default_rng(42)
    >>> common = VehiclePopulation.random(500, keygen, rng)
    >>> records = []
    >>> for period in range(4):
    ...     transient = VehiclePopulation.random(4000, keygen, rng)
    ...     bitmap = Bitmap(16384)
    ...     common.encode_into(bitmap, location=1, encoder=encoder)
    ...     transient.encode_into(bitmap, location=1, encoder=encoder)
    ...     records.append(bitmap)
    >>> estimate = PointPersistentEstimator().estimate(records)
    >>> abs(estimate.estimate - 500) < 150
    True
    """

    def estimate(self, records: Sequence[RecordLike]) -> PointEstimate:
        """Estimate the number of common vehicles across ``records``.

        Parameters
        ----------
        records:
            At least two traffic records (or raw bitmaps) from the
            same location, one per measurement period of interest.
            Sizes may differ but must all be powers of two.

        Raises
        ------
        EstimationError
            When the join statistics are inconsistent (see
            :func:`point_estimate_from_statistics`) or a joined bitmap
            is saturated.
        SketchError
            When fewer than two records are supplied or sizes are not
            powers of two.
        """
        bitmaps = _as_bitmaps(records)
        return self.estimate_from_split(split_and_join(bitmaps), len(bitmaps))

    def estimate_from_split(
        self, split: SplitJoinResult, periods: int
    ) -> PointEstimate:
        """Evaluate Eq. 12 on a precomputed split-and-join.

        The query-plan cache and the interval-join index hand over
        memoized :class:`~repro.sketch.join.SplitJoinResult` objects;
        this produces the identical :class:`PointEstimate` that
        :meth:`estimate` would compute from the raw records (the split
        carries the same bitmaps, so the same IEEE doubles fall out).
        ``periods`` is the record count the split was built from.
        """
        v_a0 = split.half_a.zero_fraction()
        v_b0 = split.half_b.zero_fraction()
        v_star1 = split.joined.one_fraction()
        estimate = point_estimate_from_statistics(v_a0, v_b0, v_star1, split.size)
        return PointEstimate(
            estimate=estimate,
            v_a0=v_a0,
            v_b0=v_b0,
            v_star1=v_star1,
            size=split.size,
            periods=int(periods),
        )


    def estimate_batch(
        self, batches: Sequence[BitmapBatch]
    ) -> List[PointEstimate]:
        """Estimate every stacked run of a cell at once.

        ``batches[p]`` holds period ``p``'s bitmaps for all runs; the
        result list has one :class:`PointEstimate` per run, each
        bit-identical to :meth:`estimate` on that run's scalar records
        (the joins are boolean reductions and the final formula is
        evaluated per run on the same IEEE doubles).

        Degenerate runs (saturated halves, inconsistent join
        statistics) raise exactly the same typed
        :class:`~repro.exceptions.EstimationError` /
        :class:`~repro.exceptions.SaturatedBitmapError` the scalar
        path raises, prefixed with the failing run's index.
        """
        split = split_and_join_batch(batches)
        v_a0 = split.half_a.zero_fractions().tolist()
        v_b0 = split.half_b.zero_fractions().tolist()
        v_star1 = split.joined.one_fractions().tolist()
        size = split.joined.size
        periods = len(batches)
        results = []
        for run, (a, b, v) in enumerate(zip(v_a0, v_b0, v_star1)):
            try:
                value = point_estimate_from_statistics(a, b, v, size)
            except EstimationError as exc:
                raise type(exc)(f"run {run}: {exc}") from exc
            results.append(
                PointEstimate(
                    estimate=value,
                    v_a0=a,
                    v_b0=b,
                    v_star1=v,
                    size=size,
                    periods=periods,
                )
            )
        return results


def estimate_point_persistent(records: Sequence[RecordLike]) -> PointEstimate:
    """Convenience function: one-shot point persistent estimate."""
    return PointPersistentEstimator().estimate(records)
