"""The paper's primary contribution: persistent-traffic estimators.

* :mod:`repro.core.point` — point persistent traffic (Section III,
  Eq. 12): the number of vehicles passing one location in *every*
  measurement period of interest.
* :mod:`repro.core.point_to_point` — point-to-point persistent traffic
  (Section IV, Eq. 21): the number of vehicles passing *both* of two
  locations in every period.
* :mod:`repro.core.baselines` — the comparison methods the paper
  evaluates against: the direct AND-join benchmark (Fig. 4) and the
  exact, non-private ID-reporting counter that motivates the privacy
  design.
* :mod:`repro.core.results` — typed result objects carrying the
  estimate together with the measured bitmap statistics that produced
  it.
"""

from repro.core.baselines import (
    DirectAndBenchmark,
    ExactIdCounter,
    direct_and_estimate,
)
from repro.core.multisplit import MultiSplitEstimate, MultiSplitPointEstimator
from repro.core.path import PathEstimate, PathPersistentEstimator
from repro.core.point import PointPersistentEstimator, estimate_point_persistent
from repro.core.point_to_point import (
    PointToPointPersistentEstimator,
    estimate_point_to_point_persistent,
)
from repro.core.results import PointEstimate, PointToPointEstimate

__all__ = [
    "DirectAndBenchmark",
    "ExactIdCounter",
    "MultiSplitEstimate",
    "MultiSplitPointEstimator",
    "PathEstimate",
    "PathPersistentEstimator",
    "PointEstimate",
    "PointPersistentEstimator",
    "PointToPointEstimate",
    "PointToPointPersistentEstimator",
    "direct_and_estimate",
    "estimate_point_persistent",
    "estimate_point_to_point_persistent",
]
