"""Generalized k-way split estimator (extension of Section III-B).

The paper divides the records into *two* subsets and notes: "While
dividing Π into more than two sets is possible, we find the two-set
solution is not only simple but works effectively."  This module
implements the general k-way construction so that remark can be
checked quantitatively (see ``benchmarks/test_ablation_split.py``).

Derivation.  Split the expanded records into k groups and AND-join
each into ``E_g`` with zero fraction ``V_g0``; AND the groups into
``E_*`` with one fraction ``V*_1``.  Write ``x = (1 - 1/m)^{n*}`` (the
probability no common vehicle covers a given bit).  Each group's
transient-only collision probability is ``q_g = 1 - V_g0 / x`` (the
exact abstraction identity used in Section III-B), and a bit of
``E_*`` is one iff a common vehicle covers it or every group collides
transiently:

    E(V*_1) = (1 - x) + x · Π_g (1 - V_g0 / x)

For k = 2 this solves in closed form to the paper's Eq. 12.  For
k >= 3 the polynomial in ``1/x`` has no tidy inverse, so the estimator
solves for ``x`` numerically (Brent's method) on the bracket
``[max_g V_g0, 1]``; ``f`` is guaranteed non-negative at the left end
because ``E_* ⊆ E_g`` forces ``V*_1 <= 1 - V_g0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from scipy.optimize import brentq

from repro.core.point import RecordLike, _as_bitmaps
from repro.exceptions import ConfigurationError, EstimationError, SketchError
from repro.sketch.bitmap import Bitmap
from repro.sketch.expansion import expand_to
from repro.sketch.join import and_join


@dataclass(frozen=True)
class MultiSplitEstimate:
    """Result of the k-way split estimator."""

    estimate: float
    group_zero_fractions: List[float]
    v_star1: float
    size: int
    periods: int
    k: int

    @property
    def clamped(self) -> float:
        """The estimate floored at zero."""
        return max(self.estimate, 0.0)

    def relative_error(self, actual: float) -> float:
        """The paper's accuracy metric ``|n̂* - n*| / n*``."""
        if actual <= 0:
            raise ValueError(f"actual volume must be positive, got {actual}")
        return abs(self.estimate - actual) / actual


def multi_split_estimate_from_statistics(
    group_zero_fractions: Sequence[float], v_star1: float, size: int
) -> float:
    """Solve the k-factor occupancy equation for ``n*``.

    Falls back to the closed form for k = 2 (bit-for-bit the paper's
    Eq. 12); uses Brent's method otherwise.
    """
    fractions = [float(v) for v in group_zero_fractions]
    if len(fractions) < 2:
        raise ConfigurationError("the split needs at least 2 groups")
    if any(v <= 0.0 for v in fractions):
        raise EstimationError(
            "a group's AND-join is saturated; increase the load factor f"
        )
    log_base = math.log(1.0 - 1.0 / size)

    if len(fractions) == 2:
        v_a0, v_b0 = fractions
        argument = v_star1 + v_a0 + v_b0 - 1.0
        if argument <= 0.0:
            raise EstimationError(
                "inconsistent join statistics (V*_1 + V_a0 + V_b0 <= 1)"
            )
        return (math.log(v_a0) + math.log(v_b0) - math.log(argument)) / log_base

    lower = max(fractions)

    def objective(x: float) -> float:
        product = 1.0
        for v in fractions:
            product *= 1.0 - v / x
        return (1.0 - x) + x * product - v_star1

    at_lower = objective(lower)
    at_one = objective(1.0)
    if at_lower < 0.0:
        # Only possible through measurement noise (V*_1 > 1 - max V_g0
        # cannot happen for genuine AND-joins).
        raise EstimationError(
            "inconsistent join statistics: E_* has more ones than its "
            "fullest component group allows"
        )
    if at_one > 0.0:
        # Fewer ones than pure transient independence predicts: the
        # best (least-squares at the boundary) answer is "no common
        # traffic".
        return 0.0
    if at_lower == 0.0:
        x = lower
    else:
        x = brentq(objective, lower, 1.0, xtol=1e-15)
    if x <= 0.0:
        raise EstimationError("numeric inversion produced a non-positive root")
    return math.log(x) / log_base


class MultiSplitPointEstimator:
    """Point persistent estimation with a k-way record split.

    Parameters
    ----------
    k:
        Number of groups to split the records into.  ``k = 2``
        reproduces :class:`~repro.core.point.PointPersistentEstimator`
        exactly.  Requires at least ``k`` records.
    """

    def __init__(self, k: int = 2):
        if k < 2:
            raise ConfigurationError(f"k must be >= 2, got {k}")
        self._k = int(k)

    @property
    def k(self) -> int:
        """The number of split groups."""
        return self._k

    def _split(self, bitmaps: List[Bitmap]) -> List[List[Bitmap]]:
        count = len(bitmaps)
        base, remainder = divmod(count, self._k)
        groups: List[List[Bitmap]] = []
        start = 0
        for g in range(self._k):
            length = base + (1 if g < remainder else 0)
            groups.append(bitmaps[start:start + length])
            start += length
        return groups

    def estimate(self, records: Sequence[RecordLike]) -> MultiSplitEstimate:
        """Estimate the common-vehicle count across ``records``."""
        bitmaps = _as_bitmaps(records)
        if len(bitmaps) < self._k:
            raise SketchError(
                f"a {self._k}-way split needs at least {self._k} records, "
                f"got {len(bitmaps)}"
            )
        size = max(b.size for b in bitmaps)
        expanded = [expand_to(b, size) for b in bitmaps]
        group_joins = [and_join(group) for group in self._split(expanded)]
        joined = and_join(group_joins)
        fractions = [g.zero_fraction() for g in group_joins]
        v_star1 = joined.one_fraction()
        estimate = multi_split_estimate_from_statistics(fractions, v_star1, size)
        return MultiSplitEstimate(
            estimate=estimate,
            group_zero_fractions=fractions,
            v_star1=v_star1,
            size=size,
            periods=len(bitmaps),
            k=self._k,
        )
