"""Command-line front end.

Regenerate any paper artifact, or drive the system as a tool::

    python -m repro table1 --runs 20          # paper artifacts
    python -m repro table2 --empirical
    python -m repro fig4 --runs 10 --step 5
    python -m repro all --runs 5

    python -m repro simulate --periods 5      # end-to-end city run
    python -m repro simulate --fault-plan plan.json   # lossy ingest
    python -m repro chaos                     # fault-grid chaos sweep
    python -m repro attack --s 3 --f 2        # the Sec. V adversary
    python -m repro archive verify DIR        # record-archive tooling
    python -m repro archive inspect DIR
    python -m repro archive repair DIR        # crash recovery

Every simulate/attack/experiment subcommand accepts ``--metrics-out
PATH`` (with ``--metrics-format {prom,json,text}``) to activate the
observability layer for the run and export the collected metrics,
``--events-out PATH`` to stream structured JSONL events,
``--serve-metrics PORT`` to expose live ``/metrics``, ``/healthz``,
``/traces`` and ``/profile`` endpoints while the run executes (0
picks a free port), ``--trace-out PATH`` to dump recent distributed
traces as JSONL, and ``--profile {cprofile,wall}`` to capture a
hotspot profile of the run (``--profile-out PATH`` writes the JSON
report; without it a text summary prints after the run).  Without
those flags nothing is collected and output is unchanged.  See
``docs/observability.md`` for the metric catalog and the endpoint
contract.

The experiment defaults favour quick regeneration; the paper's own
setting is 1000 runs per cell (``--runs 1000``).  ``--workers N`` fans
independent sweep cells over N processes with byte-identical output
(see ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import DEFAULT_RUNS, ExperimentConfig
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2

_EXPERIMENT_NAMES = sorted(EXPERIMENTS) + ["all"]

#: Exporter formats accepted by --metrics-format.
_METRICS_FORMATS = ("prom", "json", "text")


def _add_metrics_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect runtime metrics and write them to PATH",
    )
    parser.add_argument(
        "--metrics-format",
        choices=_METRICS_FORMATS,
        default="prom",
        help="exporter for --metrics-out (default: prom)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="append structured JSONL events (spans, periods) to PATH",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live /metrics, /healthz and /traces on this localhost "
            "port while the run executes (0 picks a free port, printed "
            "at startup)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write recent traces as JSONL to PATH when the run ends",
    )
    parser.add_argument(
        "--profile",
        choices=("cprofile", "wall"),
        default=None,
        metavar="ENGINE",
        help=(
            "profile the run with the given engine (cprofile = exact "
            "tracing, wall = low-overhead stack sampling); prints a "
            "hotspot summary unless --profile-out is given"
        ),
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="write the --profile report as JSON to PATH",
    )


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs",
        type=int,
        default=DEFAULT_RUNS,
        help=f"simulation runs per cell (default {DEFAULT_RUNS}; paper: 1000)",
    )
    parser.add_argument("--seed", type=int, default=2017, help="master random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "processes for independent experiment cells (default 1 = "
            "serial; any value yields byte-identical output)"
        ),
    )
    parser.add_argument(
        "--step",
        type=int,
        default=1,
        help="fig4 sweep subsampling (keep every Nth point)",
    )
    parser.add_argument(
        "--points-per-target",
        type=int,
        default=1,
        help="fig5/fig6 measurements per swept target",
    )
    parser.add_argument(
        "--empirical",
        action="store_true",
        help="table2: also run the simulated tracking attack per cell",
    )
    parser.add_argument(
        "--from-trip-table",
        action="store_true",
        help="table1: derive workload parameters from the embedded OD matrix",
    )


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description=(
            "Persistent traffic measurement through V2I communications "
            "(ICDCS 2017 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in _EXPERIMENT_NAMES:
        sub = subparsers.add_parser(
            name,
            help=(
                "regenerate every table and figure"
                if name == "all"
                else f"regenerate the paper's {name}"
            ),
        )
        _add_experiment_options(sub)
        _add_metrics_options(sub)

    extra_help = {
        "losscurve": "extension: persistent estimation under V2I loss",
        "tradeoff": "extension: measured accuracy-privacy frontier",
        "tsweep": "extension: error vs number of measurement periods",
        "faultgrid": "extension: estimator error under injected ingest faults",
    }
    for extra, help_text in extra_help.items():
        sub = subparsers.add_parser(extra, help=help_text)
        sub.add_argument("--runs", type=int, default=DEFAULT_RUNS)
        sub.add_argument("--seed", type=int, default=2017)
        _add_metrics_options(sub)

    simulate = subparsers.add_parser(
        "simulate", help="run the end-to-end city simulation"
    )
    simulate.add_argument("--periods", type=int, default=5)
    simulate.add_argument("--commuters", type=int, default=150)
    simulate.add_argument("--transients", type=int, default=800)
    simulate.add_argument(
        "--locations",
        type=int,
        nargs="+",
        default=[10, 16, 17],
        help="zones to instrument with RSUs",
    )
    simulate.add_argument("--detection-rate", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--archive",
        metavar="DIR",
        default=None,
        help="also persist every collected record to this archive",
    )
    simulate.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="inject faults from a FaultPlan JSON file (see docs/robustness.md)",
    )
    simulate.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "answer queries from surviving periods when at least this "
            "fraction is covered (default: strict, or 0.5 with --fault-plan)"
        ),
    )
    simulate.add_argument(
        "--dead-letter",
        metavar="PATH",
        default=None,
        help="append quarantined uploads to this JSONL dead-letter log",
    )
    simulate.add_argument(
        "--explain",
        action="store_true",
        help=(
            "with --server: ask the tier to explain the remote query "
            "(per-shard wire/engine latency, cache deltas, coverage "
            "contribution, deadline budget) and print the breakdown"
        ),
    )
    simulate.add_argument(
        "--server",
        metavar="URL",
        default=None,
        help=(
            "after the run, upload every collected record to a sharded "
            "ingest tier at tcp://host:port and re-answer the "
            "persistent-traffic queries remotely (see `serve`)"
        ),
    )
    simulate.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="socket timeout (seconds) for --server uploads and queries",
    )
    simulate.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "memoize per-location joins in the server's query-plan "
            "cache (--no-cache recomputes every join; estimates are "
            "bit-identical either way)"
        ),
    )
    _add_metrics_options(simulate)

    chaos = subparsers.add_parser(
        "chaos", help="sweep injected faults through the city pipeline"
    )
    chaos.add_argument("--seed", type=int, default=2017)
    chaos.add_argument("--periods", type=int, default=6)
    chaos.add_argument("--commuters", type=int, default=120)
    chaos.add_argument("--transients", type=int, default=600)
    chaos.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "run the distributed drill instead: a supervised sharded "
            "tier behind a wire-level chaos proxy — kill, partition "
            "and flap shards under live TCP ingest, asserting zero "
            "acknowledged-record loss and coverage-honest answers"
        ),
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=3,
        help="worker process count of the --distributed drill",
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the --distributed drill report as JSON to PATH",
    )
    _add_metrics_options(chaos)

    attack = subparsers.add_parser(
        "attack", help="run the Section V tracking adversary"
    )
    attack.add_argument("--s", type=int, default=3, dest="s")
    attack.add_argument("--f", type=float, default=2.0, dest="f")
    attack.add_argument("--volume", type=int, default=4096)
    attack.add_argument("--trials", type=int, default=2000)
    attack.add_argument("--seed", type=int, default=0)
    _add_metrics_options(attack)

    archive = subparsers.add_parser(
        "archive", help="inspect, verify, or repair a record archive"
    )
    archive.add_argument("action", choices=["verify", "inspect", "repair"])
    archive.add_argument("directory")

    serve = subparsers.add_parser(
        "serve", help="run the sharded multi-process TCP ingest tier"
    )
    serve.add_argument(
        "--shards", type=int, default=2, help="worker process count"
    )
    serve.add_argument(
        "--port", type=int, default=0, help="front-door port (0 = free port)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help=(
            "root for per-shard WALs and archives (default: a fresh "
            "temporary directory, printed at startup)"
        ),
    )
    serve.add_argument("--s", type=int, default=3, dest="s")
    serve.add_argument("--load-factor", type=float, default=2.0)
    serve.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="front-door-to-shard socket timeout in seconds",
    )
    serve.add_argument(
        "--supervise",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "watch shard workers and auto-restart dead or wedged ones "
            "(exponential backoff; a flapping shard is fenced after "
            "its restart budget and its cells report uncovered)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "front-door concurrent-request bound; excess requests are "
            "refused with a retryable MSG_BUSY (0 sheds everything)"
        ),
    )
    serve.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the cluster-merged live endpoints (/metrics, "
            "/healthz, /traces, /profile, /shards) on this localhost "
            "port (0 picks a free port, printed at startup)"
        ),
    )

    return parser


def _run_experiment_command(name: str, args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if name == "all" else [name]
    for experiment in names:
        started = time.time()
        config = ExperimentConfig(
            runs=args.runs, seed=args.seed, workers=args.workers
        )
        if experiment == "table1":
            output = format_table1(
                run_table1(config, from_trip_table=args.from_trip_table)
            )
        elif experiment == "table2":
            output = format_table2(run_table2(config, empirical=args.empirical))
        elif experiment == "fig4":
            output = format_fig4(run_fig4(config, fraction_step=args.step))
        elif experiment == "fig5":
            output = format_fig5(
                run_fig5(config, points_per_target=args.points_per_target)
            )
        elif experiment == "fig6":
            output = format_fig6(
                run_fig6(config, points_per_target=args.points_per_target)
            )
        else:  # pragma: no cover - registry and CLI enumerate together
            raise KeyError(experiment)
        elapsed = time.time() - started
        print(output)
        print(f"\n[{experiment} regenerated in {elapsed:.1f}s]\n")
    return 0


def _run_simulate(args: argparse.Namespace) -> int:
    from repro.exceptions import CoverageError
    from repro.network.road import sioux_falls_network
    from repro.server.degradation import CoveragePolicy
    from repro.server.persistence import RecordArchive
    from repro.server.queries import PointPersistentQuery
    from repro.sim.scenario import CityScenario
    from repro.traffic.sioux_falls import sioux_falls_trip_table

    fault_plan = None
    if args.fault_plan:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan)
    scenario = CityScenario(
        network=sioux_falls_network(),
        trip_table=sioux_falls_trip_table(),
        persistent_vehicles=args.commuters,
        transient_vehicles_per_period=args.transients,
        rsu_locations=args.locations,
        seed=args.seed,
        detection_rate=args.detection_rate,
        fault_plan=fault_plan,
        dead_letter_path=args.dead_letter,
        cache=args.cache,
    )
    for summary in scenario.run(args.periods):
        line = (
            f"period {summary.period}: {summary.encounters} encounters, "
            f"{summary.missed} missed, {summary.rejected} rejected"
        )
        if fault_plan is not None:
            line += f", {summary.lost} lost, {summary.outaged} outaged"
        print(line)
    if scenario.transport is not None:
        stats = scenario.transport.stats
        print(
            f"transport: {stats.delivered}/{stats.uploads} delivered, "
            f"{stats.retries} retries, {stats.duplicates} duplicates, "
            f"{stats.quarantined} quarantined"
        )
    policy = None
    if args.min_coverage is not None or fault_plan is not None:
        policy = CoveragePolicy(
            min_coverage=(
                args.min_coverage if args.min_coverage is not None else 0.5
            ),
            min_periods=min(2, args.periods),
        )
    periods = tuple(range(args.periods))
    if len(periods) >= 2:
        print("\npoint persistent traffic (actual vs estimated):")
        for location in args.locations:
            actual = scenario.truth.point_persistent(location, periods)
            query = PointPersistentQuery(location=location, periods=periods)
            if policy is None:
                estimate = scenario.server.point_persistent(query)
                print(f"  zone {location}: {actual} vs {estimate.clamped:.1f}")
                continue
            try:
                result = scenario.server.point_persistent(query, policy=policy)
            except CoverageError as exc:
                print(f"  zone {location}: {actual} vs unavailable ({exc})")
                continue
            tag = ""
            if result.degraded:
                tag = (
                    f"  [degraded: {len(result.covered_periods)}/"
                    f"{len(result.requested_periods)} periods]"
                )
            print(
                f"  zone {location}: {actual} vs "
                f"{result.value.clamped:.1f}{tag}"
            )
    else:
        print("\nsingle-period volumes (actual vs estimated):")
        from repro.server.queries import PointVolumeQuery

        for location in args.locations:
            actual = len(scenario.truth.ids_at(location, 0))
            estimate = scenario.server.point_volume(
                PointVolumeQuery(location=location, period=0)
            )
            print(f"  zone {location}: {actual} vs {estimate:.1f}")
    if scenario.server.cache is not None:
        cache_stats = scenario.server.cache.stats
        print(
            f"\nquery-plan cache: {cache_stats.hits} hits / "
            f"{cache_stats.lookups} lookups "
            f"(hit rate {cache_stats.hit_rate:.0%}), "
            f"{cache_stats.evictions} evictions, "
            f"{cache_stats.invalidations} invalidations"
        )
    if args.archive:
        archive = RecordArchive(args.archive)
        count = archive.save_all(scenario.server.store.all_records())
        print(f"\narchived {count} records to {args.archive}")
    if args.server:
        return _push_to_server(args, scenario, periods, policy)
    return 0


def _push_to_server(args, scenario, periods, policy) -> int:
    """Ship a finished simulation's records to a sharded tier over TCP
    and re-answer the persistent-traffic queries remotely."""
    from repro.faults.transport import frame_payload
    from repro.server.sharded.client import ShardClient
    from repro.server.sharded.engine import policy_to_payload
    from repro.server.sharded.frontdoor import decode_sharded_result

    client = ShardClient.from_url(args.server, timeout=args.timeout)
    try:
        frames = [
            frame_payload(record.to_payload())
            for record in scenario.server.store.all_records()
        ]
        counts = client.upload_batch(frames)
        print(
            f"\nuploaded {len(frames)} records to {args.server}: "
            f"{counts.get('delivered', 0)} delivered, "
            f"{counts.get('duplicate', 0)} duplicate, "
            f"{counts.get('quarantined', 0)} quarantined"
        )
        if len(periods) < 2:
            return 0
        reply = client.query(
            {
                "kind": "multi_point_persistent",
                "locations": [int(loc) for loc in args.locations],
                "periods": [int(p) for p in periods],
                "policy": policy_to_payload(policy),
            },
            explain=getattr(args, "explain", False),
        )
        if not reply.get("ok"):
            print(f"remote query failed: {reply.get('error')}")
            return 1
        result = decode_sharded_result(reply["result"])
        print("remote sharded estimates:")
        for outcome in result.outcomes:
            if outcome.result is None:
                print(
                    f"  zone {outcome.location} (shard {outcome.shard}): "
                    f"unavailable ({outcome.error})"
                )
                continue
            coverage = outcome.result.coverage
            tag = ""
            if outcome.result.degraded:
                tag = (
                    f"  [degraded: {len(coverage.covered)}/"
                    f"{len(coverage.requested)} periods]"
                )
            print(
                f"  zone {outcome.location} (shard {outcome.shard}): "
                f"{outcome.result.value.clamped:.1f}{tag}"
            )
        if getattr(args, "explain", False) and result.explain:
            _print_explain(result.explain)
    finally:
        client.close()
    return 0


def _print_explain(explain: dict) -> None:
    """Render a sharded query's explain payload for the terminal."""
    print(
        f"query explain: {explain['total_seconds'] * 1000:.1f} ms total, "
        f"{explain['locations']} location(s) x {explain['periods']} "
        f"period(s), coverage {explain['coverage_fraction']:.0%}"
    )
    budget = explain.get("deadline_budget_seconds")
    if budget is not None:
        consumed = explain.get("deadline_consumed_seconds") or 0.0
        print(
            f"  deadline: {consumed * 1000:.1f} ms of "
            f"{budget * 1000:.1f} ms budget consumed"
        )
    for shard in sorted(explain.get("per_shard", {}), key=int):
        detail = explain["per_shard"][shard]
        timing = ""
        if detail.get("wall_seconds") is not None:
            timing = f", wall {detail['wall_seconds'] * 1000:.1f} ms"
        if detail.get("engine_seconds") is not None:
            timing += f", engine {detail['engine_seconds'] * 1000:.1f} ms"
        if detail.get("wire_seconds") is not None:
            timing += f", wire {detail['wire_seconds'] * 1000:.1f} ms"
        cache = ""
        if detail.get("cache_lookups") is not None:
            cache = (
                f", cache {detail.get('cache_hits', 0)}/"
                f"{detail['cache_lookups']}"
            )
        print(
            f"  shard {shard}: {detail.get('answered', 0)}/"
            f"{detail.get('locations', 0)} location(s) answered, "
            f"{detail.get('covered_cells', 0)}/"
            f"{detail.get('requested_cells', 0)} cell(s) covered"
            f"{timing}{cache}"
        )


def _run_serve(args) -> int:
    import tempfile

    from repro.server.sharded.service import ShardedIngestService

    data_dir = args.data_dir
    if data_dir is None:
        data_dir = tempfile.mkdtemp(prefix="repro-shards-")
    service = ShardedIngestService(
        n_shards=args.shards,
        data_dir=data_dir,
        host=args.host,
        port=args.port,
        s=args.s,
        load_factor=args.load_factor,
        timeout=args.timeout,
        max_inflight=args.max_inflight,
        supervise=args.supervise,
    )
    port = service.start()
    print(f"[shard data under {data_dir}]")
    print(
        f"[sharded ingest tier: {args.shards} shard(s) behind "
        f"tcp://{args.host}:{port}"
        f"{', supervised' if args.supervise else ''}]",
        flush=True,
    )
    metrics_server = None
    if getattr(args, "serve_metrics", None) is not None:
        from repro import obs

        # The obs session in _dispatch already enabled the registry
        # and trace buffer; here we attach the tier's telemetry
        # collector so the endpoints serve the *cluster-merged* view.
        cluster = service.cluster_telemetry()
        metrics_server = obs.MetricsServer(
            port=args.serve_metrics, cluster=cluster
        )
        bound = metrics_server.start()
        print(
            f"[metrics server listening on http://127.0.0.1:{bound}]",
            flush=True,
        )
    try:
        # A client's MSG_SHUTDOWN stops the front door remotely; exit
        # then, not just on Ctrl-C.
        while service.running:
            time.sleep(0.5)
        print("shut down by client request")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        service.stop()
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    from repro.privacy.analysis import (
        detection_probability,
        noise_probability,
        noise_to_information_ratio,
    )
    from repro.privacy.attack import TrackingAttack
    from repro.sketch.sizing import next_power_of_two

    m_prime = next_power_of_two(int(args.volume * args.f))
    n_prime = int(round(m_prime / args.f))
    attack = TrackingAttack(
        n_prime=n_prime, m_prime=m_prime, s=args.s, seed=args.seed
    )
    result = attack.run(args.trials)
    p = noise_probability(n_prime, m_prime)
    p_prime = detection_probability(p, args.s)
    ratio = noise_to_information_ratio(n_prime, m_prime, args.s)
    print(f"adversary setting: s={args.s}, f={args.f:g}, n'={n_prime}, m'={m_prime}")
    print(f"noise p           : analytic {p:.4f}, attack {result.empirical_p:.4f}")
    print(
        f"detection p'      : analytic {p_prime:.4f}, "
        f"attack {result.empirical_p_prime:.4f}"
    )
    print(
        f"noise/information : analytic {ratio:.4f}, "
        f"attack {result.empirical_ratio:.4f}"
    )
    verdict = "questionable" if ratio > 1 else "dangerously confident"
    print(f"=> tracking evidence from the records is {verdict}")
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import ChaosConfig, format_chaos, run_chaos

    if args.distributed:
        return _run_distributed_chaos(args)
    config = ChaosConfig(
        seed=args.seed,
        periods=args.periods,
        commuters=args.commuters,
        transients=args.transients,
    )
    result = run_chaos(config)
    print(format_chaos(result))
    if not result.ok:
        print(
            f"\nchaos sweep FAILED: {len(result.violations)} violation(s)",
            file=sys.stderr,
        )
        for violation in result.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    return 0


def _run_distributed_chaos(args: argparse.Namespace) -> int:
    from repro.faults.drill import (
        DistributedChaosConfig,
        format_distributed_chaos,
        run_distributed_chaos,
    )

    config = DistributedChaosConfig(seed=args.seed, shards=args.shards)
    result = run_distributed_chaos(config)
    print(format_distributed_chaos(result))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
        print(f"\n[drill report written to {args.report}]")
    if not result.ok:
        print(
            f"\ndistributed drill FAILED: {len(result.violations)} "
            "violation(s)",
            file=sys.stderr,
        )
        for violation in result.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    return 0


def _run_archive(args: argparse.Namespace) -> int:
    from repro.server.persistence import RecordArchive

    if args.action == "repair":
        archive, report = RecordArchive.recover(args.directory)
        print(
            f"archive {args.directory}: {len(archive)} records after repair"
        )
        print(
            f"  recovered {len(report.recovered)} orphan(s), "
            f"dropped {len(report.dropped)} vanished entr(ies), "
            f"quarantined {len(report.quarantined)} corrupt file(s)"
        )
        if report.clean:
            print("  manifest was already consistent")
        return 0

    archive = RecordArchive(args.directory)
    if args.action == "verify":
        count = archive.verify()
        print(f"{count} records verified OK in {args.directory}")
        return 0
    print(f"archive {args.directory}: {len(archive)} records")
    for location, period in archive.entries():
        record = archive.load(location, period)
        print(
            f"  location {location}, period {period}: m={record.size}, "
            f"{record.bitmap.ones()} bits set, "
            f"~{record.point_estimate():.0f} vehicles"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-traffic`` and ``python -m repro``.

    Library failures (:class:`~repro.exceptions.ReproError`) print a
    one-line diagnosis and exit 1 instead of dumping a traceback.
    """
    from repro.exceptions import ReproError

    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _write_metrics(registry, path: str, fmt: str) -> None:
    from repro import obs

    renderers = {
        "prom": obs.to_prometheus,
        "json": obs.to_json,
        "text": obs.format_report,
    }
    # Exposition boundary: account the shard fold before rendering so
    # the export carries its own telemetry (mirrors the /metrics
    # handler; exporters themselves stay pure).
    registry.account_exposition()
    text = renderers[fmt](registry)
    if not text.endswith("\n"):
        text += "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _write_traces(traces, path: str) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        for payload in traces.to_payloads():
            handle.write(json.dumps(payload, sort_keys=True) + "\n")


def _dispatch(args: argparse.Namespace) -> int:
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    serve_port = getattr(args, "serve_metrics", None)
    trace_out = getattr(args, "trace_out", None)
    profile_engine = getattr(args, "profile", None)
    if (
        not metrics_out
        and not events_out
        and serve_port is None
        and not trace_out
        and not profile_engine
    ):
        return _dispatch_command(args)

    # Observability opted in: collect (and trace) for the duration of
    # the command, then export and (for simulate) print the run report.
    # Sinks flush/close and exporters run in the finally block, so the
    # files are complete even when the run raises mid-flight.
    from repro import obs

    try:
        event_log = obs.StructuredLog(events_out) if events_out else None
    except OSError as exc:
        print(f"error: cannot open {events_out}: {exc}", file=sys.stderr)
        return 1
    traces = obs.TraceBuffer()
    registry = obs.enable(
        registry=obs.MetricsRegistry(), event_log=event_log, trace=traces
    )
    http_server = None
    # `serve` wires its own cluster-aware MetricsServer inside
    # _run_serve (it needs the running service to merge shard
    # telemetry); the obs session here still owns enable/disable.
    if serve_port is not None and args.command != "serve":
        http_server = obs.MetricsServer(
            registry=registry, traces=traces, port=serve_port
        )
        bound = http_server.start()
        # Flush before dispatch so scrape scripts reading our stdout
        # learn the port while the run is still executing.
        print(
            f"[metrics server listening on http://127.0.0.1:{bound}]",
            flush=True,
        )
    profiler = None
    if profile_engine:
        profiler = obs.Profiler(engine=profile_engine)
        profiler.start()
    code: Optional[int] = None
    export_failed = False
    profile_report = None
    try:
        code = _dispatch_command(args)
    finally:
        if profiler is not None:
            # Stop first so teardown (server shutdown, exporters) never
            # pollutes the hotspot ranking; counts while obs is still
            # enabled so repro_profile_runs_total lands in the export.
            profile_report = profiler.stop()
        if http_server is not None:
            http_server.stop()
        obs.disable()  # closes the event log: --events-out is complete
        if code == 0 and args.command == "simulate":
            print()
            print(obs.format_report(registry))
        if metrics_out:
            try:
                _write_metrics(registry, metrics_out, args.metrics_format)
                print(
                    f"[metrics written to {metrics_out} "
                    f"({args.metrics_format})]"
                )
            except OSError as exc:
                print(
                    f"error: cannot write {metrics_out}: {exc}",
                    file=sys.stderr,
                )
                export_failed = True
        if trace_out:
            try:
                _write_traces(traces, trace_out)
                print(f"[{len(traces)} traces written to {trace_out}]")
            except OSError as exc:
                print(
                    f"error: cannot write {trace_out}: {exc}",
                    file=sys.stderr,
                )
                export_failed = True
        if events_out and event_log is not None:
            print(
                f"[{event_log.events_written} events written to {events_out}]"
            )
        if profile_report is not None:
            profile_out = getattr(args, "profile_out", None)
            if profile_out:
                try:
                    with open(profile_out, "w", encoding="utf-8") as handle:
                        handle.write(profile_report.to_json() + "\n")
                    print(f"[profile written to {profile_out}]")
                except OSError as exc:
                    print(
                        f"error: cannot write {profile_out}: {exc}",
                        file=sys.stderr,
                    )
                    export_failed = True
            else:
                print()
                print(profile_report.format_text(10))
    if export_failed and code == 0:
        return 1
    return code


def _dispatch_command(args: argparse.Namespace) -> int:
    if args.command in _EXPERIMENT_NAMES:
        return _run_experiment_command(args.command, args)
    if args.command in ("losscurve", "tradeoff", "tsweep", "faultgrid"):
        from repro.experiments import extras
        from repro.experiments.common import cell_timer

        config = ExperimentConfig(runs=args.runs, seed=args.seed)
        with cell_timer(args.command, "total"):
            if args.command == "losscurve":
                print(extras.format_losscurve(extras.run_losscurve(config)))
            elif args.command == "tradeoff":
                print(extras.format_tradeoff(extras.run_tradeoff(config)))
            elif args.command == "faultgrid":
                print(extras.format_faultgrid(extras.run_faultgrid(config)))
            else:
                print(extras.format_tsweep(extras.run_tsweep(config)))
        return 0
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "attack":
        return _run_attack(args)
    if args.command == "archive":
        return _run_archive(args)
    if args.command == "serve":
        return _run_serve(args)
    raise KeyError(args.command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
