"""One V2I encounter: a vehicle within range of a broadcasting RSU.

Runs the complete exchange of Section II-B/II-D:

1. the RSU's next beacon (location, certificate, bitmap size) reaches
   the vehicle — in simulation, at the first beacon slot after the
   vehicle arrives;
2. the vehicle verifies the certificate against its trust anchor; a
   rogue RSU fails here and the vehicle stays silent;
3. the vehicle challenges the RSU, which answers with its private key;
4. the vehicle computes ``h_v`` and transmits it under a one-time MAC;
5. the RSU sets ``B[h_v] = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.obs import runtime as obs
from repro.rsu.unit import RoadSideUnit
from repro.vehicle.onboard import OnBoardUnit

#: Bound handles, one per encounter outcome (a closed enum).
_ENCOUNTERS = {
    outcome: obs.bind_counter(
        "repro_encounters_total",
        "V2I encounters executed, by outcome.",
        outcome=outcome,
    )
    for outcome in ("encoded", "rejected_rogue", "lost_channel")
}
_BITS_SET = obs.bind_counter(
    "repro_bits_set_total",
    "Bitmap bits set by successful encounters.",
)


class EncounterOutcome(Enum):
    """How a V2I encounter ended."""

    ENCODED = "encoded"
    REJECTED_ROGUE = "rejected_rogue"
    LOST_CHANNEL = "lost_channel"


@dataclass(frozen=True)
class EncounterResult:
    """Outcome plus the beacon-slot delay the vehicle experienced."""

    outcome: EncounterOutcome
    beacon_delay: float
    index: Optional[int] = None


class ProtocolDriver:
    """Executes encounters between on-board units and RSUs."""

    def __init__(self, authenticate: bool = True, injector=None):
        # When True, the challenge-response round runs on every
        # encounter; when False only certificate verification gates
        # the response (faster, same bitmap outcome for honest RSUs).
        self._authenticate = authenticate
        # Optional repro.faults.FaultInjector; when its channel-loss
        # draw fires, the encoding report never reaches the RSU.
        self._injector = injector

    def beacon_wait(self, rsu: RoadSideUnit, arrival_offset: float) -> float:
        """Seconds from arrival until the next beacon broadcast."""
        interval = rsu.beacon_interval
        slots_passed = math.floor(arrival_offset / interval)
        next_slot = (slots_passed + 1) * interval
        return next_slot - arrival_offset

    def run_encounter(
        self, obu: OnBoardUnit, rsu: RoadSideUnit, arrival_offset: float = 0.0
    ) -> EncounterResult:
        """Run one full encounter; applies the report to the RSU.

        With a fault injector attached, the encoding report may be
        lost on the DSRC channel — the full exchange still runs (the
        vehicle doesn't know its report was dropped), but the RSU's
        bitmap is never touched and the outcome is ``LOST_CHANNEL``.
        """
        delay = self.beacon_wait(rsu, arrival_offset)
        beacon = rsu.make_beacon()
        if self._authenticate:
            challenge = obu.make_challenge()
            answer = rsu.answer_challenge(challenge)
            report = obu.respond_to_beacon(
                beacon,
                challenge_answer=answer,
                rsu_private_key=rsu.private_key,
                challenge=challenge,
            )
        else:
            report = obu.respond_to_beacon(beacon)
        if report is None:
            if obs.ACTIVE:
                _ENCOUNTERS["rejected_rogue"].inc()
            return EncounterResult(
                outcome=EncounterOutcome.REJECTED_ROGUE, beacon_delay=delay
            )
        if self._injector is not None and self._injector.drop_report():
            if obs.ACTIVE:
                _ENCOUNTERS["lost_channel"].inc()
            return EncounterResult(
                outcome=EncounterOutcome.LOST_CHANNEL, beacon_delay=delay
            )
        rsu.receive_report(report)
        if obs.ACTIVE:
            _ENCOUNTERS["encoded"].inc()
            _BITS_SET.inc()
        return EncounterResult(
            outcome=EncounterOutcome.ENCODED,
            beacon_delay=delay,
            index=report.index,
        )
