"""A minimal, deterministic discrete-event engine.

Events are (time, sequence, action) triples on a binary heap; ties in
time break by insertion order, so runs are fully deterministic.  The
engine is deliberately small — the simulation's complexity lives in
the domain objects, not the scheduler.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ConfigurationError

Action = Callable[[], None]


class SimulationEngine:
    """Schedules and executes timed actions in order."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Action) -> None:
        """Schedule ``action`` at absolute ``time``.

        Scheduling in the past (before the engine's current time) is a
        configuration error — it would silently reorder causality.
        """
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule an event at {time:.3f}s; "
                f"the simulation is already at {self._now:.3f}s"
            )
        heapq.heappush(self._heap, (float(time), self._sequence, action))
        self._sequence += 1

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule ``action`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        if not self._heap:
            return False
        time, _, action = heapq.heappop(self._heap)
        self._now = time
        action()
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Run events (optionally only those at time <= ``until``).

        Returns the number of events executed.  With ``until`` set,
        the engine's clock advances to ``until`` even if the last
        event fired earlier, so period boundaries are exact.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = float(until)
        return executed
