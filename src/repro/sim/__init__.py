"""Discrete-event simulation of the V2I measurement system.

The experiment harness uses the fast vectorized encoding path; this
package exists to run the *whole protocol* — beacons, certificate
verification, challenge-response, one-time MACs, encoding reports,
period rollover, uploads — so integration tests and the city example
can validate that the end-to-end system produces exactly the bitmaps
the fast path assumes.

* :mod:`repro.sim.events` — a heap-based event engine.
* :mod:`repro.sim.protocol` — one V2I encounter (vehicle meets RSU).
* :mod:`repro.sim.scenario` — a city-scale scenario: trip-table
  driven vehicles moving over a road network instrumented with RSUs,
  reporting to a central server across measurement periods.
"""

from repro.sim.events import SimulationEngine
from repro.sim.protocol import EncounterOutcome, ProtocolDriver
from repro.sim.scenario import CityScenario, PeriodSummary

__all__ = [
    "CityScenario",
    "EncounterOutcome",
    "PeriodSummary",
    "ProtocolDriver",
    "SimulationEngine",
]
