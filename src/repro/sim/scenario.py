"""City-scale end-to-end scenario.

Builds a full deployment — trusted third party, RSUs over a road
network, a central server, a fleet of vehicles with on-board units —
and runs measurement periods through the discrete-event engine.  The
fleet has two parts, matching the paper's workload model:

* *persistent* vehicles: commuters with a fixed origin-destination
  trip they repeat every period (these form the persistent traffic);
* *transient* vehicles: fresh vehicles each period with one-off trips.

Alongside the privacy-preserving pipeline, the scenario runs the
non-private :class:`~repro.core.baselines.ExactIdCounter` as ground
truth, so callers can compare estimates against exact persistent
volumes — something a real deployment could never do, and precisely
what a simulation is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.baselines import ExactIdCounter
from repro.crypto.hashing import default_hasher
from repro.crypto.keys import KeyGenerator
from repro.crypto.pki import CertificateAuthority
from repro.exceptions import ConfigurationError
from repro.network.deployment import RsuDeployment
from repro.network.road import RoadNetwork
from repro.obs import runtime as obs
from repro.obs.spans import span

#: Bound handle for the per-pass loss accounting hot path.
_LOSS_EVENTS = obs.bind_counter(
    "repro_loss_events_total",
    "Physical passes lost to V2I channel faults.",
)
from repro.network.trajectory import TripPlanner
from repro.server.central import CentralServer
from repro.sim.events import SimulationEngine
from repro.sim.protocol import EncounterOutcome, ProtocolDriver
from repro.traffic.trip_table import TripTable
from repro.vehicle.encoder import VehicleEncoder
from repro.vehicle.identity import VehicleIdentity
from repro.vehicle.onboard import OnBoardUnit


@dataclass(frozen=True)
class PeriodSummary:
    """What happened during one simulated measurement period.

    ``missed`` counts passes lost to the legacy ``detection_rate``
    knob; ``lost`` counts injected channel-loss faults and ``outaged``
    counts passes blanked by RSU outage windows (both zero without a
    fault plan).
    """

    period: int
    encounters: int
    rejected: int
    missed: int
    reports_by_location: Dict[int, int]
    lost: int = 0
    outaged: int = 0


class _FleetVehicle:
    """A vehicle: identity material, OBU, and its travel behaviour."""

    __slots__ = ("obu", "origin", "destination")

    def __init__(self, obu: OnBoardUnit, origin: int, destination: int):
        self.obu = obu
        self.origin = origin
        self.destination = destination


class CityScenario:
    """A complete simulated deployment over a road network.

    Parameters
    ----------
    network:
        The road network to instrument.
    trip_table:
        OD volumes used to sample vehicle trips.
    persistent_vehicles:
        Commuters repeating the same trip every period.
    transient_vehicles_per_period:
        Fresh one-off vehicles per period.
    s:
        Representative-bit parameter for the whole deployment.
    load_factor:
        Eq. 2 load factor ``f``.
    rsu_locations:
        Locations to instrument (default: all network locations).
    period_seconds:
        Measurement-period length (default one day).
    seed:
        Master seed for all randomness in the scenario.
    hasher_flavour:
        ``"splitmix64"`` (fast, default) or ``"sha256"``
        (byte-faithful protocol hashing).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  When given,
        encounters may lose their encoding reports, outage windows
        blank whole (location, period) cells, and every upload runs
        through a resilient
        :class:`~repro.faults.transport.UploadTransport` (retries,
        checksummed frames, duplicate absorption, dead-lettering)
        instead of being handed straight to the server.
    dead_letter_path:
        Optional JSONL file mirroring the transport's quarantine
        (only meaningful with a fault plan).
    cache:
        Whether the central server memoizes per-location joins in its
        query-plan cache (default True; estimates are bit-identical
        either way).
    """

    def __init__(
        self,
        network: RoadNetwork,
        trip_table: TripTable,
        persistent_vehicles: int = 200,
        transient_vehicles_per_period: int = 1000,
        s: int = 3,
        load_factor: float = 2.0,
        rsu_locations: Optional[Sequence[int]] = None,
        period_seconds: float = 86400.0,
        seed: int = 0,
        hasher_flavour: str = "splitmix64",
        detection_rate: float = 1.0,
        fault_plan=None,
        dead_letter_path=None,
        cache: bool = True,
    ):
        if persistent_vehicles < 0 or transient_vehicles_per_period < 0:
            raise ConfigurationError("fleet sizes must be non-negative")
        if not 0.0 < detection_rate <= 1.0:
            raise ConfigurationError(
                f"detection rate must lie in (0, 1], got {detection_rate}"
            )
        self._rng = np.random.default_rng(seed)
        self._network = network
        self._trip_table = trip_table
        self._authority = CertificateAuthority(seed=seed ^ 0xCA)
        self._deployment = RsuDeployment(
            network,
            self._authority,
            locations=rsu_locations,
        )
        self._server = CentralServer(s=s, load_factor=load_factor, cache=cache)
        self._keygen = KeyGenerator(master_seed=seed ^ 0x5EED, s=s)
        self._encoder = VehicleEncoder(default_hasher(seed ^ 0xA5A5, hasher_flavour))
        self._planner = TripPlanner(network, period_seconds=period_seconds)
        self._fault_plan = fault_plan
        self._injector = fault_plan.injector() if fault_plan is not None else None
        if fault_plan is not None:
            from repro.faults.transport import UploadTransport

            self._transport = UploadTransport(
                self._server,
                injector=self._injector,
                dead_letter_path=dead_letter_path,
            )
        else:
            self._transport = None
        self._driver = ProtocolDriver(authenticate=True, injector=self._injector)
        self._truth = ExactIdCounter()
        self._period_seconds = float(period_seconds)
        self._detection_rate = float(detection_rate)
        self._transients_per_period = int(transient_vehicles_per_period)
        self._next_vehicle_id = 1
        self._periods_run = 0
        self._persistent_fleet = [
            self._new_vehicle() for _ in range(int(persistent_vehicles))
        ]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def server(self) -> CentralServer:
        """The central server receiving every traffic record."""
        return self._server

    @property
    def deployment(self) -> RsuDeployment:
        """The RSU deployment."""
        return self._deployment

    @property
    def truth(self) -> ExactIdCounter:
        """Exact (non-private) ground truth, for evaluation only."""
        return self._truth

    @property
    def fault_plan(self):
        """The attached fault plan, or None."""
        return self._fault_plan

    @property
    def injector(self):
        """The run's fault injector (fault counts live here), or None."""
        return self._injector

    @property
    def transport(self):
        """The resilient upload transport, or None without faults."""
        return self._transport

    @property
    def periods_run(self) -> int:
        """Number of completed measurement periods."""
        return self._periods_run

    @property
    def persistent_fleet_size(self) -> int:
        """Number of commuter vehicles."""
        return len(self._persistent_fleet)

    def commuter_obus(self) -> List[OnBoardUnit]:
        """The on-board units of the persistent (commuter) fleet.

        Exposed for evaluation scenarios that probe vehicles directly,
        e.g. confronting them with a rogue RSU.
        """
        return [vehicle.obu for vehicle in self._persistent_fleet]

    # ------------------------------------------------------------------
    # Fleet construction
    # ------------------------------------------------------------------

    def _new_vehicle(self) -> _FleetVehicle:
        return self._new_vehicles(1)[0]

    def _new_vehicles(self, count: int) -> List[_FleetVehicle]:
        """Mint ``count`` fresh vehicles with one batched OD draw.

        ``rng.choice(size=k)`` consumes the underlying uniform stream
        exactly as ``k`` single draws do, so batching leaves the RNG
        stream — and therefore every simulation output — unchanged
        while paying the trip-table normalization once instead of per
        vehicle.
        """
        od_pairs = (
            self._planner.sample_od_pairs(self._trip_table, count, self._rng)
            if count > 0
            else []
        )
        vehicles: List[_FleetVehicle] = []
        for origin, destination in od_pairs:
            vehicle_id = self._next_vehicle_id
            self._next_vehicle_id += 1
            identity = VehicleIdentity.from_generator(vehicle_id, self._keygen)
            obu = OnBoardUnit(
                identity=identity,
                trust_anchor=self._authority.trust_anchor,
                encoder=self._encoder,
                mac_seed=vehicle_id,
            )
            vehicles.append(
                _FleetVehicle(obu=obu, origin=origin, destination=destination)
            )
        return vehicles

    # ------------------------------------------------------------------
    # Period execution
    # ------------------------------------------------------------------

    def run_period(self) -> PeriodSummary:
        """Simulate one full measurement period."""
        with span("sim.period", period=self._periods_run) as period_span:
            summary = self._run_period()
        log = obs.event_log()
        if log is not None:
            extra = {}
            if period_span.context is not None:
                extra["trace_id"] = period_span.context.trace_id
            log.emit(
                "period",
                "sim.period",
                period=summary.period,
                encounters=summary.encounters,
                missed=summary.missed,
                rejected=summary.rejected,
                lost=summary.lost,
                outaged=summary.outaged,
                reports_by_location=summary.reports_by_location,
                **extra,
            )
        return summary

    def _run_period(self) -> PeriodSummary:
        period = self._periods_run
        engine = SimulationEngine()
        if self._transport is not None:
            # Delayed uploads from earlier periods arrive now, out of
            # order relative to the live stream.
            self._transport.flush()
        counters = {
            "encounters": 0,
            "rejected": 0,
            "missed": 0,
            "lost": 0,
            "outaged": 0,
        }
        reports_by_location: Dict[int, int] = {
            location: 0 for location in self._deployment.locations
        }

        for location in self._deployment.locations:
            size = self._server.recommend_bitmap_size(location)
            self._deployment.rsu_at(location).start_period(period, bitmap_size=size)

        transients = self._new_vehicles(self._transients_per_period)
        for vehicle in chain(self._persistent_fleet, transients):
            trajectory = self._planner.plan_trip(
                vehicle.obu.identity.vehicle_id,
                vehicle.origin,
                vehicle.destination,
                self._rng,
            )
            for location, pass_time in zip(trajectory.path, trajectory.pass_times):
                if not self._deployment.has_rsu(location):
                    continue
                engine.schedule(
                    pass_time,
                    self._make_encounter_action(
                        vehicle, location, pass_time, period,
                        counters, reports_by_location,
                    ),
                )

        engine.run(until=self._period_seconds)

        for location in self._deployment.locations:
            record = self._deployment.rsu_at(location).end_period()
            if self._injector is not None and self._injector.in_outage(
                location, period
            ):
                # The RSU was dark this whole period: its record never
                # leaves the site.  Queries over this period degrade.
                continue
            if self._transport is not None:
                self._transport.send(record)
            else:
                self._server.receive_payload(record.to_payload())

        self._periods_run += 1
        return PeriodSummary(
            period=period,
            encounters=counters["encounters"],
            rejected=counters["rejected"],
            missed=counters["missed"],
            reports_by_location=reports_by_location,
            lost=counters["lost"],
            outaged=counters["outaged"],
        )

    def _make_encounter_action(
        self,
        vehicle: _FleetVehicle,
        location: int,
        pass_time: float,
        period: int,
        counters: Dict[str, int],
        reports_by_location: Dict[int, int],
    ):
        def action() -> None:
            counters["encounters"] += 1
            # Ground truth records the *physical* pass (evaluation
            # only); the measurement system below may still miss it.
            self._truth.observe(
                location, period, vehicle.obu.identity.vehicle_id
            )
            # An RSU in an injected outage window broadcasts nothing;
            # the pass happens but can never be recorded.
            if self._injector is not None and self._injector.in_outage(
                location, period
            ):
                counters["outaged"] += 1
                return
            # Channel fault injection: the vehicle misses the beacon
            # window (occlusion, collision, packet loss) and passes
            # unrecorded.
            if (
                self._detection_rate < 1.0
                and self._rng.random() >= self._detection_rate
            ):
                counters["missed"] += 1
                if obs.ACTIVE:
                    _LOSS_EVENTS.inc()
                return
            rsu = self._deployment.rsu_at(location)
            result = self._driver.run_encounter(
                vehicle.obu, rsu, arrival_offset=pass_time
            )
            if result.outcome is EncounterOutcome.REJECTED_ROGUE:
                counters["rejected"] += 1
                return
            if result.outcome is EncounterOutcome.LOST_CHANNEL:
                counters["lost"] += 1
                return
            reports_by_location[location] += 1

        return action

    def flush_uploads(self) -> None:
        """Deliver any fault-delayed uploads still held by the transport."""
        if self._transport is not None:
            self._transport.flush()

    def run(self, periods: int) -> List[PeriodSummary]:
        """Run several consecutive measurement periods."""
        if periods < 1:
            raise ConfigurationError(f"periods must be >= 1, got {periods}")
        summaries = [self.run_period() for _ in range(periods)]
        self.flush_uploads()
        return summaries
