"""The distributed chaos drill: kill, partition, flap — lose nothing.

Where :func:`~repro.faults.chaos.run_chaos` batters the *in-process*
pipeline, this drill batters the sharded TCP tier as deployed: a
supervised :class:`~repro.server.sharded.service.ShardedIngestService`
behind a :class:`~repro.faults.proxy.ChaosProxy`, with a live
:class:`~repro.faults.transport.UploadTransport` streaming records
through the proxy's wire faults while the drill

1. **SIGKILLs one shard mid-ingest** and asserts the supervisor
   restarts it (WAL replay path, ``repro_shard_restarts_total``);
2. **partitions the ingest wire** and heals it, relying on the
   transport's retry/dead-letter contract to keep the sender honest;
3. **flaps a second shard** — kills it after every supervised restart
   until the restart budget fences it
   (``repro_shard_flaps_total``) — then asserts the merged query
   reports *exactly* the fenced shard's cells uncovered;
4. **restarts the fenced shard manually** and asserts every record
   the tier ever acknowledged is queryable again: the zero
   acknowledged-record-loss contract, end to end.

Violations collect in :attr:`DistributedChaosResult.violations`;
:meth:`DistributedChaosResult.check` raises with the list.  The CI
``chaos-sharded`` step runs ``python -m repro chaos --distributed``
and uploads :meth:`DistributedChaosResult.to_json` as an artifact.

Run only from an importable ``__main__`` (``-m repro``, a script file,
or pytest) — the shard workers use the ``spawn`` context.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import TransportError
from repro.faults.plan import FaultPlan
from repro.faults.proxy import ChaosProxy
from repro.faults.transport import UploadOutcome, UploadTransport
from repro.obs import runtime as obs
from repro.rsu.record import TrafficRecord
from repro.server.degradation import CoveragePolicy
from repro.server.sharded.client import ShardClient, TcpUploadClient
from repro.server.sharded.engine import policy_to_payload
from repro.server.sharded.frontdoor import decode_sharded_result
from repro.server.sharded.service import ShardedIngestService
from repro.server.sharded.supervisor import RestartPolicy
from repro.sketch.bitmap import Bitmap

#: Cells are (location, period) pairs throughout.
Cell = Tuple[int, int]


@dataclass(frozen=True)
class DistributedChaosConfig:
    """Shape and fault rates of one distributed drill.

    Defaults are sized for the CI smoke budget (< 90 s): a 3-shard
    tier, a few hundred small records, restart policy tight enough
    that supervised restarts and fencing land in a couple of seconds.
    """

    seed: int = 2017
    shards: int = 3
    locations: int = 36
    periods: int = 8
    bits: int = 256
    wire_drop: float = 0.02
    wire_delay: float = 0.05
    wire_truncate: float = 0.01
    proxy_delay_seconds: float = 0.02
    timeout: float = 2.0
    max_attempts: int = 5
    partition_seconds: float = 0.4
    #: Sends before the first shard kill (the "mid-ingest" marker).
    kill_after_sends: int = 50
    data_dir: Optional[str] = None
    restart_policy: RestartPolicy = RestartPolicy(
        check_interval=0.1,
        ping_interval=0.5,
        ping_timeout=0.5,
        ping_failures=2,
        backoff_base=0.3,
        backoff_factor=2.0,
        backoff_max=2.0,
        max_restarts=2,
        restart_window=60.0,
    )

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            seed=self.seed,
            wire_drop=self.wire_drop,
            wire_delay=self.wire_delay,
            wire_truncate=self.wire_truncate,
        )


@dataclass
class DistributedChaosResult:
    """Everything one distributed drill observed."""

    sent: int = 0
    acked: int = 0
    redriven: int = 0
    unacked_fenced: int = 0
    restarts: Dict[int, int] = field(default_factory=dict)
    fenced: Dict[int, str] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    transport_stats: Dict[str, float] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self) -> "DistributedChaosResult":
        """Raise AssertionError listing every violation (if any)."""
        if self.violations:
            raise AssertionError(
                "distributed chaos drill failed:\n  "
                + "\n  ".join(self.violations)
            )
        return self

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "sent": self.sent,
                "acked": self.acked,
                "redriven": self.redriven,
                "unacked_fenced": self.unacked_fenced,
                "restarts": {str(k): v for k, v in self.restarts.items()},
                "fenced": {str(k): v for k, v in self.fenced.items()},
                "fault_counts": self.fault_counts,
                "transport_stats": self.transport_stats,
                "events": self.events,
                "violations": self.violations,
                "duration_seconds": round(self.duration_seconds, 3),
            },
            indent=2,
            sort_keys=True,
        )


def _build_records(config: DistributedChaosConfig) -> Dict[Cell, TrafficRecord]:
    rng = np.random.default_rng([config.seed, 0xD121])
    records: Dict[Cell, TrafficRecord] = {}
    for location in range(1, config.locations + 1):
        for period in range(config.periods):
            records[(location, period)] = TrafficRecord(
                location=location,
                period=period,
                bitmap=Bitmap(config.bits, rng.random(config.bits) < 0.4),
            )
    return records


def _wait_until(predicate, timeout: float, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _query_all(
    client: ShardClient, config: DistributedChaosConfig
):
    reply = client.query(
        {
            "kind": "multi_point_persistent",
            "locations": list(range(1, config.locations + 1)),
            "periods": list(range(config.periods)),
            "policy": policy_to_payload(
                CoveragePolicy(min_coverage=0.25, min_periods=1)
            ),
        }
    )
    if not reply.get("ok"):
        raise TransportError(f"drill query failed: {reply}")
    return decode_sharded_result(reply["result"])


class _IngestWorker(threading.Thread):
    """Streams every record through the proxied transport, tracking acks.

    The front door acks remotely (``receipt.record`` is None), so ack
    bookkeeping goes by send order: the i-th send is the i-th cell.
    """

    def __init__(self, transport: UploadTransport, cells, records, marker, marker_at):
        super().__init__(name="drill-ingest", daemon=True)
        self._transport = transport
        self._cells = cells
        self._records = records
        self._marker = marker
        self._marker_at = marker_at
        self.acked: Set[Cell] = set()
        self.failed: List[Cell] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:  # noqa: D102 - Thread contract
        try:
            for index, cell in enumerate(self._cells):
                if index == self._marker_at:
                    self._marker.set()
                receipt = self._transport.send(self._records[cell])
                if receipt.outcome in (
                    UploadOutcome.DELIVERED,
                    UploadOutcome.DUPLICATE,
                ):
                    self.acked.add(cell)
                else:
                    self.failed.append(cell)
        except BaseException as exc:  # noqa: BLE001 - reported by the drill
            self.error = exc
        finally:
            self._marker.set()


def run_distributed_chaos(
    config: DistributedChaosConfig = DistributedChaosConfig(),
) -> DistributedChaosResult:
    """Run the full distributed drill; injected faults never raise."""
    started = time.monotonic()
    result = DistributedChaosResult()
    records = _build_records(config)
    cells = sorted(records)

    with tempfile.TemporaryDirectory(prefix="chaos-sharded-") as tmp:
        data_dir = config.data_dir if config.data_dir is not None else tmp
        service = ShardedIngestService(
            config.shards,
            data_dir,
            timeout=config.timeout,
            supervise=True,
            restart_policy=config.restart_policy,
        )
        service.start()
        injector = config.fault_plan().injector()
        proxy = ChaosProxy(
            service.host,
            service.port,
            injector=injector,
            delay_seconds=config.proxy_delay_seconds,
        )
        proxy.start()
        transport = UploadTransport(
            wire=TcpUploadClient.connect(proxy.url, timeout=config.timeout),
            max_attempts=config.max_attempts,
            base_backoff=0.05,
            sleep=time.sleep,
        )
        direct = ShardClient(service.host, service.port, timeout=10.0)
        try:
            _drill(
                config, result, service, proxy, transport, direct,
                records, cells,
            )
        finally:
            result.fault_counts = dict(injector.counts)
            stats = transport.stats
            result.transport_stats = {
                "uploads": stats.uploads,
                "delivered": stats.delivered,
                "duplicates": stats.duplicates,
                "quarantined": stats.quarantined,
                "retries": stats.retries,
            }
            direct.close()
            proxy.stop()
            service.stop()
        result.duration_seconds = time.monotonic() - started
    return result


def _drill(
    config: DistributedChaosConfig,
    result: DistributedChaosResult,
    service: ShardedIngestService,
    proxy: ChaosProxy,
    transport: UploadTransport,
    direct: ShardClient,
    records: Dict[Cell, TrafficRecord],
    cells: List[Cell],
) -> None:
    router = service.coordinator.router
    owners: Dict[int, List[int]] = {}
    for location in range(1, config.locations + 1):
        owners.setdefault(router.shard_for(location), []).append(location)
    owning = sorted(shard for shard in owners if owners[shard])
    if len(owning) < 2:
        result.violations.append(
            f"drill needs >= 2 shards owning locations, got {owning}"
        )
        return
    victim, flapper = owning[0], owning[1]
    result.events.append(
        f"victim shard {victim} ({len(owners[victim])} locations), "
        f"flapper shard {flapper} ({len(owners[flapper])} locations)"
    )

    marker = threading.Event()
    worker = _IngestWorker(
        transport, cells, records, marker, config.kill_after_sends
    )
    worker.start()

    # --- Phase 1: SIGKILL the victim mid-ingest; supervisor restarts.
    marker.wait(timeout=60)
    service.kill_shard(victim, auto_restart=True)
    result.events.append(f"killed shard {victim} mid-ingest")
    if _wait_until(lambda: service.restart_count(victim) >= 1, timeout=30):
        result.events.append(
            f"supervisor restarted shard {victim} "
            f"(restart_count={service.restart_count(victim)})"
        )
    else:
        result.violations.append(
            f"supervisor did not restart shard {victim} within 30s"
        )
    if obs.ACTIVE:
        restarts_metric = obs.counter(
            "repro_shard_restarts_total",
            "Supervised automatic shard worker restarts.",
            shard=str(victim),
        ).value
        if restarts_metric < 1:
            result.violations.append(
                "repro_shard_restarts_total did not record the "
                f"supervised restart of shard {victim}"
            )

    # --- Phase 2: partition the ingest wire, then heal it.
    proxy.partition()
    result.events.append("partitioned the ingest wire")
    time.sleep(config.partition_seconds)
    proxy.heal()
    result.events.append("healed the partition")

    # --- Phase 3: flap the flapper until the supervisor fences it.
    flaps = 0
    fence_deadline = time.monotonic() + 60
    while not service.is_fenced(flapper):
        if time.monotonic() > fence_deadline:
            result.violations.append(
                f"shard {flapper} was not fenced within 60s "
                f"({flaps} kills, restart_count="
                f"{service.restart_count(flapper)})"
            )
            break
        if service.shard_alive(flapper):
            service.kill_shard(flapper, auto_restart=True)
            flaps += 1
        time.sleep(0.1)
    if service.is_fenced(flapper):
        result.events.append(
            f"shard {flapper} fenced after {flaps} kills "
            f"({service.restart_count(flapper)} supervised restarts)"
        )
        if obs.ACTIVE:
            flap_metric = obs.counter(
                "repro_shard_flaps_total",
                "Shards fenced for exhausting their restart budget.",
                shard=str(flapper),
            ).value
            if flap_metric < 1:
                result.violations.append(
                    "repro_shard_flaps_total did not record the "
                    f"fencing of shard {flapper}"
                )

    # --- Phase 4: finish ingest, re-drive what the wire ate.
    worker.join(timeout=180)
    if worker.is_alive():
        result.violations.append("ingest worker did not finish within 180s")
        return
    if worker.error is not None:
        result.violations.append(
            f"ingest worker crashed: {worker.error!r} (the transport "
            "contract says injected faults never raise)"
        )
        return
    result.sent = len(cells)
    acked: Set[Cell] = set(worker.acked)
    # Re-drive undelivered cells for live shards over a clean direct
    # connection — the sender still owns anything never acked.
    for cell in worker.failed:
        if service.is_fenced(router.shard_for(cell[0])):
            result.unacked_fenced += 1
            continue
        ack = direct.upload(_frame(records[cell]))
        if ack.get("outcome") in ("delivered", "duplicate"):
            acked.add(cell)
            result.redriven += 1
        else:
            result.violations.append(
                f"re-drive of cell {cell} failed: {ack}"
            )
    result.acked = len(acked)
    result.events.append(
        f"ingest finished: {len(acked)}/{len(cells)} cells acked "
        f"({result.redriven} re-driven, {result.unacked_fenced} "
        "unacked cells owned by the fenced shard)"
    )

    # --- Phase 5: the degraded answer must be exactly honest.
    merged = _query_all(direct, config)
    uncovered = set(merged.uncovered)
    fenced_cells = {
        (location, period)
        for location in owners[flapper]
        for period in range(config.periods)
    }
    if service.is_fenced(flapper) and uncovered != fenced_cells:
        extra = sorted(uncovered - fenced_cells)[:5]
        missing = sorted(fenced_cells - uncovered)[:5]
        result.violations.append(
            "degraded query is not coverage-honest: uncovered != the "
            f"fenced shard's cells (extra={extra}, missing={missing})"
        )
    lost_live = sorted(
        cell for cell in acked - fenced_cells if cell in uncovered
    )
    if lost_live:
        result.violations.append(
            f"acked records lost on live shards: {lost_live[:10]}"
        )
    result.restarts = {
        shard: service.restart_count(shard)
        for shard in range(config.shards)
    }
    result.fenced = service.fenced

    # --- Phase 6: manual restart lifts the fence; WAL replay must
    # bring back every record the fenced shard ever acknowledged.
    service.restart_shard(flapper)
    result.events.append(f"manually restarted fenced shard {flapper}")
    recovered = _query_all(direct, config)
    still_uncovered = set(recovered.uncovered)
    lost_fenced = sorted(
        cell for cell in acked & fenced_cells if cell in still_uncovered
    )
    if lost_fenced:
        result.violations.append(
            "acked records lost across the fenced shard's WAL replay: "
            f"{lost_fenced[:10]}"
        )
    result.events.append(
        f"post-restart query covers all {len(acked)} acked cells"
        if not lost_fenced
        else "post-restart query lost acked cells"
    )


def _frame(record: TrafficRecord) -> bytes:
    from repro.faults.transport import frame_payload

    return frame_payload(record.to_payload())


def format_distributed_chaos(result: DistributedChaosResult) -> str:
    """Render a distributed drill as a text report."""
    lines = ["distributed chaos drill", "=" * 23]
    lines.extend(f"  {event}" for event in result.events)
    faults = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(result.fault_counts.items())
        if count
    )
    lines.append(f"faults injected : {faults or 'none'}")
    lines.append(
        "transport       : "
        + ", ".join(
            f"{name}={value:g}"
            for name, value in sorted(result.transport_stats.items())
        )
    )
    lines.append(
        f"acked           : {result.acked}/{result.sent} "
        f"({result.redriven} re-driven)"
    )
    lines.append(f"restarts        : {result.restarts}")
    lines.append(f"fenced          : {sorted(result.fenced) or 'none'}")
    lines.append(f"duration        : {result.duration_seconds:.1f}s")
    lines.append(f"verdict         : {'OK' if result.ok else 'FAILED'}")
    if result.violations:
        lines.append("violations:")
        lines.extend(f"  - {v}" for v in result.violations)
    return "\n".join(lines)
