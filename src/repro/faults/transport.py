"""The resilient RSU-to-server upload path.

The seed pipeline handed ``TrafficRecord.to_payload()`` bytes straight
to the server and let any problem — a flipped bit, a re-sent record —
surface as a raised :class:`~repro.exceptions.DataError` deep inside a
simulation.  :class:`UploadTransport` is the layer a real deployment
would put in between:

* every payload travels in a checksummed frame (magic + SHA-256), so
  in-flight corruption is *detected* at the server edge;
* transient timeouts are retried with exponential backoff, up to a
  configurable attempt budget;
* payloads that cannot be delivered intact (checksum failures,
  undecodable records, exhausted retries, conflicting re-uploads) are
  quarantined to a :class:`DeadLetterLog` instead of raised;
* byte-identical re-uploads are absorbed by the store's idempotent
  ``add`` and reported as duplicates, not errors;
* fault-injected *delays* hold frames back until :meth:`UploadTransport.flush`,
  delivering them out of order relative to the live stream.

The transport never raises for in-flight faults; callers read the
:class:`UploadReceipt` (and the dead-letter log) to learn what
happened.  Backoff sleeps are simulated by default (virtual seconds
accumulated on the stats), so retries cost no wall-clock time in tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Union

from repro.exceptions import DataError, ReproError, TransportError
from repro.faults.plan import FaultInjector
from repro.obs import runtime as obs
from repro.rsu.record import TrafficRecord

#: Frame layout: magic, 32-byte SHA-256 of the payload, payload bytes.
FRAME_MAGIC = b"RFR1"
_DIGEST_BYTES = 32
_HEADER_BYTES = len(FRAME_MAGIC) + _DIGEST_BYTES


def frame_payload(payload: bytes) -> bytes:
    """Wrap an upload payload in a checksummed frame."""
    return FRAME_MAGIC + hashlib.sha256(payload).digest() + payload


def unframe_payload(frame: bytes) -> tuple:
    """Split a frame into ``(payload, checksum_ok)``.

    Raises :class:`~repro.exceptions.TransportError` only for frames
    that are structurally not frames at all (short, wrong magic) —
    a *failed checksum* is an expected in-flight fault and is reported
    through the boolean, not an exception.
    """
    if len(frame) < _HEADER_BYTES:
        raise TransportError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{_HEADER_BYTES}-byte header"
        )
    if frame[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise TransportError("frame does not start with the RFR1 magic")
    digest = frame[len(FRAME_MAGIC) : _HEADER_BYTES]
    payload = frame[_HEADER_BYTES:]
    return payload, hashlib.sha256(payload).digest() == digest


class UploadOutcome(Enum):
    """How one upload ended, from the sender's point of view."""

    DELIVERED = "delivered"
    DUPLICATE = "duplicate"
    QUARANTINED = "quarantined"
    DEFERRED = "deferred"


@dataclass(frozen=True)
class UploadReceipt:
    """What the transport did with one upload."""

    outcome: UploadOutcome
    attempts: int = 1
    record: Optional[TrafficRecord] = None
    reason: str = ""


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined upload."""

    reason: str
    sha256: str
    size: int
    attempts: int
    frame: bytes = field(repr=False)

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "sha256": self.sha256,
            "size": self.size,
            "attempts": self.attempts,
        }


class DeadLetterLog:
    """Quarantine for undeliverable uploads.

    Keeps every :class:`DeadLetter` in memory (frames included, so
    operators can inspect or re-drive them) and, when a path is given,
    appends one JSON line per letter for offline forensics.
    """

    def __init__(self, path=None):
        self._entries: List[DeadLetter] = []
        self._path = path
        self._handle = (
            open(path, "a", encoding="utf-8") if path is not None else None
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[DeadLetter]:
        """The quarantined letters, oldest first."""
        return list(self._entries)

    def append(self, reason: str, frame: bytes, attempts: int) -> DeadLetter:
        """Quarantine one frame."""
        letter = DeadLetter(
            reason=reason,
            sha256=hashlib.sha256(frame).hexdigest(),
            size=len(frame),
            attempts=attempts,
            frame=bytes(frame),
        )
        self._entries.append(letter)
        if self._handle is not None:
            self._handle.write(json.dumps(letter.to_dict(), sort_keys=True) + "\n")
            self._handle.flush()
        if obs.enabled():
            obs.counter(
                "repro_records_quarantined_total",
                "Uploads quarantined to the dead-letter log, by reason.",
                reason=reason,
            ).inc()
        return letter

    def close(self) -> None:
        """Close the JSONL sink, if any (entries stay readable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _virtual_sleep(stats: "TransportStats") -> Callable[[float], None]:
    def sleep(seconds: float) -> None:
        stats.backoff_seconds += seconds

    return sleep


@dataclass
class TransportStats:
    """Mutable delivery counters for one transport instance."""

    uploads: int = 0
    delivered: int = 0
    duplicates: int = 0
    quarantined: int = 0
    deferred: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0


class UploadTransport:
    """Delivers RSU uploads to a central server, surviving faults.

    Parameters
    ----------
    server:
        Anything with ``receive_record(TrafficRecord) -> bool``
        (normally :class:`~repro.server.central.CentralServer`); the
        boolean reports whether the record was newly stored (False for
        an absorbed byte-identical duplicate).
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector` perturbing
        deliveries.  Without one the transport is a transparent (but
        still checksummed and idempotent) pipe.
    max_attempts:
        Attempt budget per upload before it is dead-lettered.
    base_backoff / backoff_factor:
        Exponential backoff schedule between attempts, in (virtual)
        seconds: ``base_backoff * backoff_factor**(attempt-1)``.
    dead_letter_path:
        Optional JSONL file mirroring the quarantine.
    sleep:
        Backoff hook; defaults to accumulating virtual seconds on
        :attr:`stats` so simulations never block.
    """

    def __init__(
        self,
        server,
        injector: Optional[FaultInjector] = None,
        max_attempts: int = 4,
        base_backoff: float = 0.05,
        backoff_factor: float = 2.0,
        dead_letter_path=None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if max_attempts < 1:
            raise TransportError(f"max_attempts must be >= 1, got {max_attempts}")
        self._server = server
        self._injector = injector
        self._max_attempts = int(max_attempts)
        self._base_backoff = float(base_backoff)
        self._backoff_factor = float(backoff_factor)
        self.stats = TransportStats()
        self.dead_letters = DeadLetterLog(dead_letter_path)
        self._sleep = sleep if sleep is not None else _virtual_sleep(self.stats)
        self._pending: List[bytes] = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Frames held back by injected delays, awaiting a flush."""
        return len(self._pending)

    def send(self, upload: Union[TrafficRecord, bytes]) -> UploadReceipt:
        """Upload one record (or raw payload bytes) to the server.

        Never raises for in-flight faults; the receipt (and the
        dead-letter log) reports what happened.  Injected duplicates
        are re-sent immediately after the primary delivery and are
        absorbed by the idempotent store.
        """
        payload = (
            upload.to_payload() if isinstance(upload, TrafficRecord) else bytes(upload)
        )
        self.stats.uploads += 1
        if self._injector is not None and self._injector.delay_upload():
            self._pending.append(payload)
            self.stats.deferred += 1
            return UploadReceipt(
                outcome=UploadOutcome.DEFERRED, attempts=0, reason="delayed"
            )
        receipt = self._transmit(payload)
        if self._injector is not None and self._injector.duplicate_upload():
            self.stats.uploads += 1
            self._transmit(payload)
        return receipt

    def flush(self) -> List[UploadReceipt]:
        """Deliver every delayed frame, newest first (out of order)."""
        pending, self._pending = self._pending, []
        return [self._transmit(payload) for payload in reversed(pending)]

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------

    def _transmit(self, payload: bytes) -> UploadReceipt:
        """Run the attempt loop for one framed payload."""
        frame = frame_payload(payload)
        attempts = 0
        while attempts < self._max_attempts:
            attempts += 1
            if self._injector is not None and self._injector.upload_times_out():
                self.stats.retries += 1
                if obs.enabled():
                    obs.counter(
                        "repro_uploads_retried_total",
                        "Upload attempts retried after in-flight timeouts.",
                    ).inc()
                self._sleep(
                    self._base_backoff * self._backoff_factor ** (attempts - 1)
                )
                continue
            wire = (
                self._injector.corrupt_payload(frame)
                if self._injector is not None
                else frame
            )
            return self._deliver(wire, attempts)
        return self._quarantine("retries_exhausted", frame, attempts)

    def _deliver(self, wire: bytes, attempts: int) -> UploadReceipt:
        """Server-edge handling of one received frame."""
        try:
            payload, checksum_ok = unframe_payload(wire)
        except TransportError:
            # In-flight corruption can hit the magic prefix itself.
            return self._quarantine("malformed", wire, attempts)
        if not checksum_ok:
            return self._quarantine("checksum", wire, attempts)
        try:
            record = TrafficRecord.from_payload(payload)
        except ReproError:
            return self._quarantine("undecodable", wire, attempts)
        try:
            added = self._server.receive_record(record)
        except DataError:
            # A conflicting record already holds this (location, period).
            return self._quarantine("conflict", wire, attempts)
        if added is False:
            self.stats.duplicates += 1
            return UploadReceipt(
                outcome=UploadOutcome.DUPLICATE,
                attempts=attempts,
                record=record,
                reason="byte-identical re-upload",
            )
        self.stats.delivered += 1
        return UploadReceipt(
            outcome=UploadOutcome.DELIVERED, attempts=attempts, record=record
        )

    def _quarantine(self, reason: str, frame: bytes, attempts: int) -> UploadReceipt:
        self.stats.quarantined += 1
        self.dead_letters.append(reason, frame, attempts)
        return UploadReceipt(
            outcome=UploadOutcome.QUARANTINED, attempts=attempts, reason=reason
        )
