"""The resilient RSU-to-server upload path.

The seed pipeline handed ``TrafficRecord.to_payload()`` bytes straight
to the server and let any problem — a flipped bit, a re-sent record —
surface as a raised :class:`~repro.exceptions.DataError` deep inside a
simulation.  :class:`UploadTransport` is the layer a real deployment
would put in between:

* every payload travels in a checksummed frame (magic + SHA-256), so
  in-flight corruption is *detected* at the server edge;
* transient timeouts are retried with exponential backoff, up to a
  configurable attempt budget;
* payloads that cannot be delivered intact (checksum failures,
  undecodable records, exhausted retries, conflicting re-uploads) are
  quarantined to a :class:`DeadLetterLog` instead of raised;
* byte-identical re-uploads are absorbed by the store's idempotent
  ``add`` and reported as duplicates, not errors;
* fault-injected *delays* hold frames back until :meth:`UploadTransport.flush`,
  delivering them out of order relative to the live stream.

The transport never raises for in-flight faults; callers read the
:class:`UploadReceipt` (and the dead-letter log) to learn what
happened.  Backoff sleeps are simulated by default (virtual seconds
accumulated on the stats), so retries cost no wall-clock time in tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Union

from repro.exceptions import (
    DataError,
    ReproError,
    RetryableTransportError,
    TransportError,
)
from repro.faults.plan import FaultInjector
from repro.obs import runtime as obs
from repro.obs import trace as trace_mod
from repro.obs.spans import span
from repro.obs.trace import CONTEXT_BYTES, TraceContext
from repro.rsu.record import TrafficRecord

#: Bound handles, one per quarantine reason (the transport's closed
#: vocabulary; an unexpected reason falls back to a registry lookup).
_QUARANTINE_REASONS = (
    "checksum", "malformed", "undecodable", "conflict", "retries_exhausted",
)
_QUARANTINED = {
    reason: obs.bind_counter(
        "repro_records_quarantined_total",
        "Uploads quarantined to the dead-letter log, by reason.",
        reason=reason,
    )
    for reason in _QUARANTINE_REASONS
}
_RETRIED = obs.bind_counter(
    "repro_uploads_retried_total",
    "Upload attempts retried after in-flight timeouts.",
)

#: Frame layout: magic, 32-byte SHA-256 of the payload, payload bytes.
FRAME_MAGIC = b"RFR1"
#: Traced frame: magic, digest, 24 ASCII bytes of trace context, payload.
TRACED_MAGIC = b"RFR2"
_DIGEST_BYTES = 32
_HEADER_BYTES = len(FRAME_MAGIC) + _DIGEST_BYTES
_TRACED_HEADER_BYTES = _HEADER_BYTES + CONTEXT_BYTES


def frame_payload(
    payload: bytes, context: Optional[TraceContext] = None
) -> bytes:
    """Wrap an upload payload in a checksummed frame.

    Without a trace context the frame is the legacy ``RFR1`` layout,
    byte-identical to what earlier versions emitted.  With one, the
    ``RFR2`` layout inserts the serialized context between the digest
    and the payload, so the upload's trace survives the wire (and
    delayed re-deliveries periods later).  The digest covers the
    *payload only* in both layouts — a garbled trace context must not
    veto delivery of an intact record.
    """
    digest = hashlib.sha256(payload).digest()
    if context is None:
        return FRAME_MAGIC + digest + payload
    return TRACED_MAGIC + digest + context.to_bytes() + payload


def parse_frame(frame: bytes) -> tuple:
    """Split a frame into ``(payload, checksum_ok, context)``.

    Accepts both layouts; ``context`` is None for ``RFR1`` frames and
    for ``RFR2`` frames whose context field was corrupted in flight
    (the payload checksum, not the trace header, decides delivery).
    Raises :class:`~repro.exceptions.TransportError` only for frames
    that are structurally not frames at all (short, wrong magic) —
    a *failed checksum* is an expected in-flight fault and is reported
    through the boolean, not an exception.
    """
    magic = frame[: len(FRAME_MAGIC)]
    if magic == TRACED_MAGIC:
        header = _TRACED_HEADER_BYTES
    elif magic == FRAME_MAGIC:
        header = _HEADER_BYTES
    elif len(frame) < _HEADER_BYTES:
        header = _HEADER_BYTES  # short *and* garbled: report the length
    else:
        raise TransportError("frame does not start with the RFR1/RFR2 magic")
    if len(frame) < header:
        raise TransportError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{header}-byte header"
        )
    digest = frame[len(FRAME_MAGIC) : _HEADER_BYTES]
    context = None
    if magic == TRACED_MAGIC:
        context = TraceContext.from_bytes(
            frame[_HEADER_BYTES:_TRACED_HEADER_BYTES]
        )
    payload = frame[header:]
    return payload, hashlib.sha256(payload).digest() == digest, context


def unframe_payload(frame: bytes) -> tuple:
    """Split a frame into ``(payload, checksum_ok)``.

    Back-compat wrapper over :func:`parse_frame` that drops the trace
    context.
    """
    payload, checksum_ok, _ = parse_frame(frame)
    return payload, checksum_ok


class UploadOutcome(Enum):
    """How one upload ended, from the sender's point of view."""

    DELIVERED = "delivered"
    DUPLICATE = "duplicate"
    QUARANTINED = "quarantined"
    DEFERRED = "deferred"


@dataclass(frozen=True)
class UploadReceipt:
    """What the transport did with one upload."""

    outcome: UploadOutcome
    attempts: int = 1
    record: Optional[TrafficRecord] = None
    reason: str = ""


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined upload."""

    reason: str
    sha256: str
    size: int
    attempts: int
    frame: bytes = field(repr=False)
    trace_id: str = ""

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "sha256": self.sha256,
            "size": self.size,
            "attempts": self.attempts,
            "trace_id": self.trace_id,
        }


class DeadLetterLog:
    """Quarantine for undeliverable uploads.

    Keeps every :class:`DeadLetter` in memory (frames included, so
    operators can inspect or re-drive them) and, when a path is given,
    appends one JSON line per letter for offline forensics.
    """

    def __init__(self, path=None):
        self._entries: List[DeadLetter] = []
        self._path = path
        self._handle = (
            open(path, "a", encoding="utf-8") if path is not None else None
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[DeadLetter]:
        """The quarantined letters, oldest first."""
        return list(self._entries)

    def append(
        self,
        reason: str,
        frame: bytes,
        attempts: int,
        context: Optional[TraceContext] = None,
    ) -> DeadLetter:
        """Quarantine one frame, remembering its upload trace if known."""
        letter = DeadLetter(
            reason=reason,
            sha256=hashlib.sha256(frame).hexdigest(),
            size=len(frame),
            attempts=attempts,
            frame=bytes(frame),
            trace_id=context.trace_id if context is not None else "",
        )
        self._entries.append(letter)
        if self._handle is not None:
            self._handle.write(json.dumps(letter.to_dict(), sort_keys=True) + "\n")
            self._handle.flush()
        if obs.ACTIVE:
            handle = _QUARANTINED.get(reason)
            if handle is None:
                obs.counter(
                    "repro_records_quarantined_total",
                    "Uploads quarantined to the dead-letter log, by reason.",
                    reason=reason,
                ).inc()
            else:
                handle.inc()
        return letter

    def close(self) -> None:
        """Close the JSONL sink, if any (entries stay readable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _virtual_sleep(stats: "TransportStats") -> Callable[[float], None]:
    def sleep(seconds: float) -> None:
        stats.backoff_seconds += seconds

    return sleep


@dataclass
class TransportStats:
    """Mutable delivery counters for one transport instance."""

    uploads: int = 0
    delivered: int = 0
    duplicates: int = 0
    quarantined: int = 0
    deferred: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0


class UploadTransport:
    """Delivers RSU uploads to a central server, surviving faults.

    Parameters
    ----------
    server:
        Anything with ``receive_record(TrafficRecord) -> bool``
        (normally :class:`~repro.server.central.CentralServer`); the
        boolean reports whether the record was newly stored (False for
        an absorbed byte-identical duplicate).
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector` perturbing
        deliveries.  Without one the transport is a transparent (but
        still checksummed and idempotent) pipe.
    max_attempts:
        Attempt budget per upload before it is dead-lettered.
    base_backoff / backoff_factor:
        Exponential backoff schedule between attempts, in (virtual)
        seconds: ``base_backoff * backoff_factor**(attempt-1)``.
    dead_letter_path:
        Optional JSONL file mirroring the quarantine.
    sleep:
        Backoff hook; defaults to accumulating virtual seconds on
        :attr:`stats` so simulations never block.
    wire:
        Alternative delivery backend: anything with
        ``deliver(frame: bytes) -> dict`` returning a server ack
        (``{"outcome": "delivered" | "duplicate" | "quarantined",
        "reason": ...}``), normally a
        :class:`~repro.server.sharded.client.TcpUploadClient` pointed
        at a sharded front door.  Exactly one of ``server`` / ``wire``
        must be given; with ``wire`` the server edge (checksum
        verification, dead-lettering, idempotent absorption) runs
        remotely and this transport folds the ack into its receipt,
        stats and a mirrored local dead-letter entry.
    """

    def __init__(
        self,
        server=None,
        injector: Optional[FaultInjector] = None,
        max_attempts: int = 4,
        base_backoff: float = 0.05,
        backoff_factor: float = 2.0,
        dead_letter_path=None,
        sleep: Optional[Callable[[float], None]] = None,
        wire=None,
    ):
        if max_attempts < 1:
            raise TransportError(f"max_attempts must be >= 1, got {max_attempts}")
        if (server is None) == (wire is None):
            raise TransportError(
                "exactly one of server= (in-memory) or wire= (socket "
                "backend) must be given"
            )
        self._server = server
        self._wire = wire
        self._injector = injector
        self._max_attempts = int(max_attempts)
        self._base_backoff = float(base_backoff)
        self._backoff_factor = float(backoff_factor)
        self.stats = TransportStats()
        self.dead_letters = DeadLetterLog(dead_letter_path)
        self._sleep = sleep if sleep is not None else _virtual_sleep(self.stats)
        # Deferred (payload, trace-context) pairs awaiting a flush.
        self._pending: List[tuple] = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Frames held back by injected delays, awaiting a flush."""
        return len(self._pending)

    def send(self, upload: Union[TrafficRecord, bytes]) -> UploadReceipt:
        """Upload one record (or raw payload bytes) to the server.

        Never raises for in-flight faults; the receipt (and the
        dead-letter log) reports what happened.  Injected duplicates
        are re-sent immediately after the primary delivery and are
        absorbed by the idempotent store.
        """
        payload = (
            upload.to_payload() if isinstance(upload, TrafficRecord) else bytes(upload)
        )
        self.stats.uploads += 1
        with span("transport.send") as send_span:
            context = send_span.context  # None unless tracing
            if self._injector is not None and self._injector.delay_upload():
                # The context travels with the deferred payload so the
                # eventual flush delivery still joins this trace.
                self._pending.append((payload, context))
                self.stats.deferred += 1
                return UploadReceipt(
                    outcome=UploadOutcome.DEFERRED, attempts=0, reason="delayed"
                )
            receipt = self._transmit(payload, context)
            if self._injector is not None and self._injector.duplicate_upload():
                self.stats.uploads += 1
                self._transmit(payload, context)
            return receipt

    def flush(self) -> List[UploadReceipt]:
        """Deliver every delayed frame, newest first (out of order).

        Each delivery re-activates the trace context captured at
        :meth:`send` time, so out-of-order frames still attribute their
        retries and dead-letters to the original upload trace.
        """
        pending, self._pending = self._pending, []
        return [
            self._transmit(payload, context)
            for payload, context in reversed(pending)
        ]

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------

    def _transmit(
        self, payload: bytes, context: Optional[TraceContext] = None
    ) -> UploadReceipt:
        """Run the attempt loop for one framed payload.

        ``context`` (set when the upload was sent under tracing) rides
        inside the frame and is re-activated here, so retry and
        dead-letter spans of deferred deliveries join the original
        upload trace even though the sending span closed long ago.
        """
        frame = frame_payload(payload, context)
        token = None
        if context is not None and obs.tracing():
            token = trace_mod.activate(context)
        try:
            attempts = 0
            while attempts < self._max_attempts:
                attempts += 1
                if self._injector is not None and self._injector.upload_times_out():
                    self.stats.retries += 1
                    if obs.ACTIVE:
                        _RETRIED.inc()
                        with span("transport.retry", attempt=attempts):
                            self._sleep(
                                self._base_backoff
                                * self._backoff_factor ** (attempts - 1)
                            )
                    else:
                        self._sleep(
                            self._base_backoff
                            * self._backoff_factor ** (attempts - 1)
                        )
                    continue
                wire = (
                    self._injector.corrupt_payload(frame)
                    if self._injector is not None
                    else frame
                )
                try:
                    return self._deliver(wire, attempts)
                except RetryableTransportError as exc:
                    # The server shed the request (MSG_BUSY): same
                    # contract as a timeout — back off at least as long
                    # as the server asked, then retry the pristine frame.
                    self.stats.retries += 1
                    if obs.ACTIVE:
                        _RETRIED.inc()
                    self._sleep(
                        max(
                            self._base_backoff
                            * self._backoff_factor ** (attempts - 1),
                            exc.retry_after,
                        )
                    )
            return self._quarantine("retries_exhausted", frame, attempts)
        finally:
            if token is not None:
                trace_mod.restore(token)

    def _deliver(self, wire: bytes, attempts: int) -> UploadReceipt:
        """Server-edge handling of one received frame.

        The frame's own trace context (if it survived the wire) is
        activated around ingest, so server-side spans and record
        bindings attribute to the upload that produced the frame.
        """
        if self._wire is not None:
            return self._deliver_remote(wire, attempts)
        try:
            payload, checksum_ok, context = parse_frame(wire)
        except TransportError:
            # In-flight corruption can hit the magic prefix itself.
            return self._quarantine("malformed", wire, attempts)
        token = None
        if context is not None and obs.tracing():
            token = trace_mod.activate(context)
        try:
            if not checksum_ok:
                return self._quarantine("checksum", wire, attempts)
            try:
                record = TrafficRecord.from_payload(payload)
            except ReproError:
                return self._quarantine("undecodable", wire, attempts)
            try:
                added = self._server.receive_record(record)
            except DataError:
                # A conflicting record already holds this (location, period).
                return self._quarantine("conflict", wire, attempts, record=record)
            if added is False:
                self.stats.duplicates += 1
                return UploadReceipt(
                    outcome=UploadOutcome.DUPLICATE,
                    attempts=attempts,
                    record=record,
                    reason="byte-identical re-upload",
                )
            self.stats.delivered += 1
            return UploadReceipt(
                outcome=UploadOutcome.DELIVERED, attempts=attempts, record=record
            )
        finally:
            if token is not None:
                trace_mod.restore(token)

    def _deliver_remote(self, wire: bytes, attempts: int) -> UploadReceipt:
        """Ship one frame over the socket backend and fold its ack.

        The remote edge is authoritative for quarantine decisions (its
        dead-letter log holds the canonical entry); a remote
        quarantine is mirrored locally with a ``remote:``-prefixed
        reason so the sender can still inspect and re-drive frames.
        An unreachable server quarantines as ``unreachable`` — the
        retry loop above only covers injected (simulated) timeouts.
        """
        try:
            ack = self._wire.deliver(wire)
        except RetryableTransportError:
            raise  # load shedding is the attempt loop's business
        except (TransportError, OSError):
            return self._quarantine("unreachable", wire, attempts)
        outcome = ack.get("outcome")
        if outcome == "delivered":
            self.stats.delivered += 1
            return UploadReceipt(
                outcome=UploadOutcome.DELIVERED, attempts=attempts
            )
        if outcome == "duplicate":
            self.stats.duplicates += 1
            return UploadReceipt(
                outcome=UploadOutcome.DUPLICATE,
                attempts=attempts,
                reason=ack.get("reason", ""),
            )
        return self._quarantine(
            f"remote:{ack.get('reason', 'unknown')}", wire, attempts
        )

    def _quarantine(
        self,
        reason: str,
        frame: bytes,
        attempts: int,
        record: Optional[TrafficRecord] = None,
    ) -> UploadReceipt:
        self.stats.quarantined += 1
        context = trace_mod.current() if obs.tracing() else None
        with span("transport.dead_letter", reason=reason):
            self.dead_letters.append(reason, frame, attempts, context=context)
        if context is not None:
            buffer = obs.trace_buffer()
            if buffer is not None:
                if record is None and reason == "retries_exhausted":
                    # The frame never left intact, so its payload is
                    # pristine — decode it to learn which cell was lost.
                    try:
                        record = TrafficRecord.from_payload(parse_frame(frame)[0])
                    except (ReproError, TransportError):
                        record = None
                if record is not None:
                    buffer.bind(
                        record.location, record.period, context, kind="dead_letter"
                    )
        return UploadReceipt(
            outcome=UploadOutcome.QUARANTINED, attempts=attempts, reason=reason
        )
