"""The chaos harness: prove the pipeline survives what it injects.

Runs the end-to-end city scenario under a grid of channel-loss and
corruption rates (plus a fixed outage window and steady timeout /
duplicate / delay rates), then answers every location's persistent
query through the degraded path and validates, per cell:

* **zero crashes** — only typed :class:`~repro.exceptions.ReproError`
  subclasses may surface, and only the expected ones
  (:class:`~repro.exceptions.CoverageError`,
  :class:`~repro.exceptions.EstimationError`); anything else
  propagates out of :func:`run_chaos` as a genuine bug;
* **honest degradation** — a query whose requested periods were not
  all served must come back flagged ``degraded=True`` with the covered
  period list matching what the store actually holds;
* **bounded error** — the (clamped) estimate must fall inside a
  slackened version of the loss bracket ``[n*·d^t', n*]`` around the
  ground truth over the covered periods, where ``d`` is the detection
  probability after channel loss and ``t'`` the surviving period
  count.

Any violation lands in :attr:`ChaosResult.violations`;
:meth:`ChaosResult.check` raises with the full list.  The CI
``chaos-smoke`` step runs this at a fixed seed (see
``tests/test_faults_chaos.py``, marker ``chaos``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import CoverageError, EstimationError
from repro.experiments.report import format_table
from repro.faults.plan import FaultPlan, OutageWindow
from repro.obs import runtime as obs
from repro.server.degradation import CoveragePolicy
from repro.server.queries import PointPersistentQuery


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos sweep: scenario shape, fault grid, and error bounds.

    The defaults are sized for a CI smoke run (a few seconds per
    cell); the error bounds are deliberately slack — chaos validates
    *survival and honesty*, not estimator accuracy, which the paper
    experiments already cover.
    """

    seed: int = 2017
    periods: int = 6
    commuters: int = 120
    transients: int = 600
    locations: Tuple[int, ...] = (10, 16, 17)
    channel_loss_rates: Tuple[float, ...] = (0.0, 0.05, 0.15)
    corruption_rates: Tuple[float, ...] = (0.0, 0.01)
    timeout: float = 0.05
    duplicate: float = 0.05
    delay: float = 0.05
    outage_periods: int = 1
    min_coverage: float = 0.34
    error_slack: float = 0.6
    error_margin: float = 60.0

    def fault_plan(self, channel_loss: float, corruption: float) -> FaultPlan:
        """The plan for one grid cell (outage pinned mid-run)."""
        outages: Tuple[OutageWindow, ...] = ()
        if self.outage_periods > 0:
            first = self.periods // 2
            outages = (
                OutageWindow(
                    first_period=first,
                    last_period=first + self.outage_periods - 1,
                    location=self.locations[0],
                ),
            )
        return FaultPlan(
            seed=self.seed,
            channel_loss=channel_loss,
            corruption=corruption,
            timeout=self.timeout,
            duplicate=self.duplicate,
            delay=self.delay,
            outages=outages,
        )


@dataclass(frozen=True)
class ChaosCellResult:
    """One (channel_loss, corruption, location) cell of the sweep."""

    channel_loss: float
    corruption: float
    location: int
    answered: bool
    degraded: bool
    coverage: float
    covered: Tuple[int, ...]
    requested: Tuple[int, ...]
    estimate: Optional[float]
    truth: Optional[int]
    floor: Optional[float]
    ceiling: Optional[float]
    reason: str = ""


@dataclass(frozen=True)
class ChaosResult:
    """Everything one chaos sweep observed."""

    cells: List[ChaosCellResult]
    fault_counts: Dict[str, int]
    transport_stats: Dict[str, float]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell survived with honest, bounded answers."""
        return not self.violations

    @property
    def degraded_cells(self) -> int:
        """Answered cells that came back flagged degraded."""
        return sum(1 for c in self.cells if c.answered and c.degraded)

    def check(self) -> "ChaosResult":
        """Raise AssertionError listing every violation (if any)."""
        if self.violations:
            raise AssertionError(
                "chaos sweep failed:\n  " + "\n  ".join(self.violations)
            )
        return self


def _error_bounds(
    truth: int, detection: float, covered_periods: int, config: ChaosConfig
) -> Tuple[float, float]:
    """The slackened loss bracket around the covered-period truth.

    A commuter survives the AND-join only if it was detected in every
    covered period, so the expected estimate sits between
    ``truth * d^t'`` (independent per-pass losses) and ``truth``
    (no loss).  ``error_slack`` widens the bracket multiplicatively
    and ``error_margin`` absolutely, absorbing estimator noise at
    these small CI-sized volumes.
    """
    floor = truth * detection ** covered_periods
    lower = floor * (1.0 - config.error_slack) - config.error_margin
    upper = truth * (1.0 + config.error_slack) + config.error_margin
    return max(lower, 0.0), upper


def run_chaos(config: ChaosConfig = ChaosConfig()) -> ChaosResult:
    """Run the full chaos grid; never raises for injected faults.

    Builds a fresh scenario per (channel_loss, corruption) cell so
    every cell sees the identical fault substreams for its rates, runs
    all periods through the faulty transport, and queries every
    location through the degraded path.
    """
    from repro.network.road import sioux_falls_network
    from repro.sim.scenario import CityScenario
    from repro.traffic.sioux_falls import sioux_falls_trip_table

    if obs.ACTIVE:
        # Pre-register the fault counters so the export always carries
        # all four, even for kinds that never fire at this seed.
        obs.counter(
            "repro_faults_injected_total",
            "Faults injected into the pipeline, by kind.",
            kind="channel_loss",
        )
        obs.counter(
            "repro_uploads_retried_total",
            "Upload attempts retried after in-flight timeouts.",
        )
        obs.counter(
            "repro_records_quarantined_total",
            "Uploads quarantined to the dead-letter log, by reason.",
            reason="checksum",
        )
        obs.counter(
            "repro_queries_degraded_total",
            "Queries answered over incomplete period coverage.",
        )

    policy = CoveragePolicy(min_coverage=config.min_coverage, min_periods=2)
    requested = tuple(range(config.periods))
    cells: List[ChaosCellResult] = []
    violations: List[str] = []
    fault_counts: Dict[str, int] = {}
    transport_totals: Dict[str, float] = {}

    for channel_loss in config.channel_loss_rates:
        for corruption in config.corruption_rates:
            plan = config.fault_plan(channel_loss, corruption)
            scenario = CityScenario(
                network=sioux_falls_network(),
                trip_table=sioux_falls_trip_table(),
                persistent_vehicles=config.commuters,
                transient_vehicles_per_period=config.transients,
                rsu_locations=list(config.locations),
                seed=config.seed,
                fault_plan=plan,
            )
            scenario.run(config.periods)
            for kind, count in scenario.injector.counts.items():
                fault_counts[kind] = fault_counts.get(kind, 0) + count
            stats = scenario.transport.stats
            for name in (
                "uploads",
                "delivered",
                "duplicates",
                "quarantined",
                "deferred",
                "retries",
                "backoff_seconds",
            ):
                transport_totals[name] = transport_totals.get(name, 0) + getattr(
                    stats, name
                )
            for location in config.locations:
                cells.append(
                    _run_cell(
                        scenario,
                        location,
                        requested,
                        policy,
                        channel_loss,
                        corruption,
                        config,
                        violations,
                    )
                )
            if obs.ACTIVE:
                obs.counter(
                    "repro_chaos_cells_total",
                    "Chaos grid cells executed end-to-end.",
                ).inc(len(config.locations))

    return ChaosResult(
        cells=cells,
        fault_counts=fault_counts,
        transport_stats=transport_totals,
        violations=violations,
    )


def _run_cell(
    scenario,
    location: int,
    requested: Tuple[int, ...],
    policy: CoveragePolicy,
    channel_loss: float,
    corruption: float,
    config: ChaosConfig,
    violations: List[str],
) -> ChaosCellResult:
    """Query one location through the degraded path and validate."""
    label = f"loss={channel_loss:g} corr={corruption:g} zone={location}"
    store = scenario.server.store
    actually_covered = store.covered_periods(location, requested)
    try:
        result = scenario.server.point_persistent(
            PointPersistentQuery(location=location, periods=requested),
            policy=policy,
        )
    except CoverageError as exc:
        report = exc.coverage
        coverage = report.fraction if report is not None else 0.0
        if len(actually_covered) >= policy.min_periods and (
            len(actually_covered) / len(requested) >= policy.min_coverage
        ):
            violations.append(
                f"{label}: CoverageError despite sufficient coverage "
                f"{actually_covered}"
            )
        return ChaosCellResult(
            channel_loss=channel_loss,
            corruption=corruption,
            location=location,
            answered=False,
            degraded=True,
            coverage=coverage,
            covered=actually_covered,
            requested=requested,
            estimate=None,
            truth=None,
            floor=None,
            ceiling=None,
            reason="coverage_below_policy",
        )
    except EstimationError as exc:
        return ChaosCellResult(
            channel_loss=channel_loss,
            corruption=corruption,
            location=location,
            answered=False,
            degraded=len(actually_covered) < len(requested),
            coverage=len(actually_covered) / len(requested),
            covered=actually_covered,
            requested=requested,
            estimate=None,
            truth=None,
            floor=None,
            ceiling=None,
            reason=f"estimation_error: {exc}",
        )

    # Honesty checks: the degraded flag and coverage metadata must
    # describe exactly what the store served.
    if result.covered_periods != actually_covered:
        violations.append(
            f"{label}: result covered {result.covered_periods} but the "
            f"store holds {actually_covered}"
        )
    expected_degraded = len(actually_covered) < len(requested)
    if result.degraded != expected_degraded:
        violations.append(
            f"{label}: degraded flag {result.degraded}, expected "
            f"{expected_degraded}"
        )

    truth = scenario.truth.point_persistent(location, result.covered_periods)
    floor, ceiling = _error_bounds(
        truth, 1.0 - channel_loss, len(result.covered_periods), config
    )
    estimate = result.value.clamped
    if not floor <= estimate <= ceiling:
        violations.append(
            f"{label}: estimate {estimate:.1f} outside bracket "
            f"[{floor:.1f}, {ceiling:.1f}] (truth {truth})"
        )
    return ChaosCellResult(
        channel_loss=channel_loss,
        corruption=corruption,
        location=location,
        answered=True,
        degraded=result.degraded,
        coverage=result.coverage_fraction,
        covered=result.covered_periods,
        requested=requested,
        estimate=estimate,
        truth=truth,
        floor=floor,
        ceiling=ceiling,
    )


def format_chaos(result: ChaosResult) -> str:
    """Render a chaos sweep as an aligned text report."""
    rows = []
    for cell in result.cells:
        rows.append(
            [
                f"{cell.channel_loss:.2f}",
                f"{cell.corruption:.2f}",
                cell.location,
                "yes" if cell.degraded else "no",
                f"{cell.coverage:.2f}",
                "-" if cell.estimate is None else f"{cell.estimate:.1f}",
                "-" if cell.truth is None else cell.truth,
                cell.reason or ("ok" if cell.answered else "unanswered"),
            ]
        )
    table = format_table(
        ["loss", "corrupt", "zone", "degraded", "coverage", "estimate",
         "truth", "status"],
        rows,
        title="chaos sweep",
    )
    faults = ", ".join(
        f"{kind}={count}" for kind, count in sorted(result.fault_counts.items())
    )
    transport = ", ".join(
        f"{name}={value:g}"
        for name, value in sorted(result.transport_stats.items())
    )
    lines = [
        table,
        "",
        f"faults injected : {faults}",
        f"transport       : {transport}",
        f"degraded cells  : {result.degraded_cells}/{len(result.cells)}",
        f"verdict         : {'OK' if result.ok else 'FAILED'}",
    ]
    if result.violations:
        lines.append("violations:")
        lines.extend(f"  - {v}" for v in result.violations)
    return "\n".join(lines)
