"""Fault injection and resilience for the V2I measurement pipeline.

A real roadside deployment degrades constantly: DSRC encounters are
lost to occlusion and packet collisions, RSUs lose power for whole
measurement periods, upload links time out, and payloads arrive
corrupted, duplicated, delayed, or out of order.  This package makes
those failure processes first-class and reproducible:

* :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` describing
  *what* goes wrong (rates and outage windows) and the stateful
  :class:`FaultInjector` that samples every fault from independent,
  deterministic substreams of one master seed;
* :mod:`repro.faults.transport` — :class:`UploadTransport`, the
  resilient RSU-to-server upload path: checksummed frames, retry with
  exponential backoff, idempotent duplicate handling, and a dead-letter
  quarantine for payloads that cannot be delivered intact;
* :mod:`repro.faults.chaos` — the chaos harness: end-to-end scenario
  sweeps across loss/outage/corruption rates asserting the pipeline
  never crashes and the estimators stay within bounded error;
* :mod:`repro.faults.proxy` — :class:`ChaosProxy`, a wire-level fault
  injector severing, stalling, truncating and partitioning real TCP
  streams between clients and the sharded tier;
* :mod:`repro.faults.drill` — the distributed chaos drill: kill,
  partition and flap shard workers under live proxied ingest while
  asserting zero acknowledged-record loss and coverage-honest
  degraded answers.

Every injected fault increments ``repro_faults_injected_total`` (by
``kind``) on the active :mod:`repro.obs` registry, so chaos runs export
their fault mix alongside the ordinary runtime metrics.  See
``docs/robustness.md`` for the fault model and degradation policy.
"""

from repro.faults.chaos import (
    ChaosCellResult,
    ChaosConfig,
    ChaosResult,
    format_chaos,
    run_chaos,
)
from repro.faults.drill import (
    DistributedChaosConfig,
    DistributedChaosResult,
    format_distributed_chaos,
    run_distributed_chaos,
)
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, OutageWindow
from repro.faults.proxy import ChaosProxy
from repro.faults.transport import (
    DeadLetter,
    DeadLetterLog,
    UploadOutcome,
    UploadReceipt,
    UploadTransport,
)

__all__ = [
    "ChaosCellResult",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosResult",
    "DeadLetter",
    "DeadLetterLog",
    "DistributedChaosConfig",
    "DistributedChaosResult",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "OutageWindow",
    "UploadOutcome",
    "UploadReceipt",
    "UploadTransport",
    "format_chaos",
    "format_distributed_chaos",
    "run_chaos",
    "run_distributed_chaos",
]
