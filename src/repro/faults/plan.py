"""Seeded fault plans: what goes wrong, when, and how often.

A :class:`FaultPlan` is an immutable description of a deployment's
failure processes — per-encounter channel loss, RSU outage windows
that blank whole periods, upload timeouts, bit-flip corruption,
duplicated and delayed uploads.  The plan itself holds no state; its
:meth:`FaultPlan.injector` mints a :class:`FaultInjector` whose every
decision is drawn from an independent, deterministically seeded
substream, so one master seed reproduces the exact same fault sequence
across runs regardless of which fault kinds are enabled.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import runtime as obs


class FaultKind(Enum):
    """The injectable fault categories, used as metric labels."""

    CHANNEL_LOSS = "channel_loss"
    OUTAGE = "outage"
    TIMEOUT = "timeout"
    CORRUPTION = "corruption"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    WIRE_DROP = "wire_drop"
    WIRE_DELAY = "wire_delay"
    WIRE_TRUNCATE = "wire_truncate"


@dataclass(frozen=True)
class OutageWindow:
    """An RSU outage: one location (or all) down for a span of periods.

    Attributes
    ----------
    first_period, last_period:
        Inclusive period range during which the RSU is dark — no
        beacons, no encodings, no upload for those periods.
    location:
        The affected location, or None for a site-wide blackout.
    """

    first_period: int
    last_period: int
    location: Optional[int] = None

    def __post_init__(self) -> None:
        if self.first_period < 0 or self.last_period < self.first_period:
            raise ConfigurationError(
                f"invalid outage window [{self.first_period}, "
                f"{self.last_period}]"
            )

    def covers(self, location: int, period: int) -> bool:
        """Whether this window blanks ``(location, period)``."""
        if self.location is not None and int(location) != self.location:
            return False
        return self.first_period <= int(period) <= self.last_period

    def to_dict(self) -> Dict:
        return {
            "first_period": self.first_period,
            "last_period": self.last_period,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "OutageWindow":
        return cls(
            first_period=int(data["first_period"]),
            last_period=int(data["last_period"]),
            location=None if data.get("location") is None else int(data["location"]),
        )


_RATE_FIELDS = (
    "channel_loss",
    "timeout",
    "corruption",
    "duplicate",
    "delay",
    "wire_drop",
    "wire_delay",
    "wire_truncate",
)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-reproducible description of injected faults.

    All rates are probabilities in ``[0, 1)``; a zero-everything plan
    is a valid no-op that exercises the resilient code paths without
    perturbing results.

    Attributes
    ----------
    seed:
        Master seed; every fault decision derives from it.
    channel_loss:
        Per-encounter probability that the vehicle's encoding report
        is lost on the DSRC channel (the pass goes unrecorded).
    timeout:
        Per-attempt probability that an upload times out in flight and
        the transport must retry.
    corruption:
        Per-upload probability that the payload suffers a bit flip
        before reaching the server (caught by the frame checksum).
    duplicate:
        Per-upload probability the RSU re-sends the same record.
    delay:
        Per-upload probability the record is held back and delivered
        out of order at the next transport flush.
    wire_drop:
        Per-event probability (at connection accept and per forwarded
        chunk) that a :class:`~repro.faults.proxy.ChaosProxy` severs
        the TCP connection outright.
    wire_delay:
        Per-chunk probability the proxy stalls a forwarded chunk.
    wire_truncate:
        Per-chunk probability the proxy forwards only half a chunk and
        then severs the connection (a torn message mid-frame).
    outages:
        RSU outage windows blanking whole ``(location, period)`` cells.
    """

    seed: int = 0
    channel_loss: float = 0.0
    timeout: float = 0.0
    corruption: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    wire_drop: float = 0.0
    wire_delay: float = 0.0
    wire_truncate: float = 0.0
    outages: Tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= float(rate) < 1.0:
                raise ConfigurationError(
                    f"fault rate {name} must lie in [0, 1), got {rate}"
                )
        object.__setattr__(self, "outages", tuple(self.outages))

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.outages and all(
            getattr(self, name) == 0.0 for name in _RATE_FIELDS
        )

    def outage_covers(self, location: int, period: int) -> bool:
        """Whether any outage window blanks ``(location, period)``."""
        return any(w.covers(location, period) for w in self.outages)

    def substream_seed(self, name: str) -> int:
        """A stable 64-bit seed for one named fault substream.

        Hash-derived so enabling one fault kind never shifts the
        random draws of another — the channel-loss sequence at seed 7
        is identical whether or not corruption is also switched on.
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def injector(self) -> "FaultInjector":
        """Mint a fresh stateful injector for one simulation run."""
        return FaultInjector(self)

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every rate multiplied by ``factor`` (clamped)."""
        updates = {
            name: min(max(getattr(self, name) * factor, 0.0), 0.999)
            for name in _RATE_FIELDS
        }
        return replace(self, **updates)

    # ------------------------------------------------------------------
    # Serialization (CLI --fault-plan files)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        data = {"seed": self.seed}
        data.update({name: getattr(self, name) for name in _RATE_FIELDS})
        data["outages"] = [w.to_dict() for w in self.outages]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"seed", "outages", *_RATE_FIELDS}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan fields: {', '.join(unknown)}"
            )
        outages = tuple(
            OutageWindow.from_dict(w) for w in data.get("outages", [])
        )
        rates = {
            name: float(data.get(name, 0.0)) for name in _RATE_FIELDS
        }
        return cls(seed=int(data.get("seed", 0)), outages=outages, **rates)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed fault-plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)


class FaultInjector:
    """Samples a :class:`FaultPlan`'s faults from per-kind substreams.

    One injector drives one simulation run.  Each fault kind draws
    from its own :func:`numpy.random.default_rng` stream seeded via
    :meth:`FaultPlan.substream_seed`, and every injected fault is
    counted locally (:attr:`counts`) and on the active metrics
    registry as ``repro_faults_injected_total{kind=...}``.
    """

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._rngs: Dict[str, np.random.Generator] = {
            kind.value: np.random.default_rng(plan.substream_seed(kind.value))
            for kind in FaultKind
        }
        self.counts: Dict[str, int] = {kind.value: 0 for kind in FaultKind}

    @property
    def plan(self) -> FaultPlan:
        """The immutable plan this injector samples."""
        return self._plan

    @property
    def total_injected(self) -> int:
        """Faults injected so far, across all kinds."""
        return sum(self.counts.values())

    def _record(self, kind: FaultKind) -> None:
        self.counts[kind.value] += 1
        if obs.ACTIVE:
            obs.counter(
                "repro_faults_injected_total",
                "Faults injected into the pipeline, by kind.",
                kind=kind.value,
            ).inc()

    def _sample(self, kind: FaultKind, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self._rngs[kind.value].random() >= rate:
            return False
        self._record(kind)
        return True

    # ------------------------------------------------------------------
    # Fault decisions
    # ------------------------------------------------------------------

    def drop_report(self) -> bool:
        """Whether this encounter's encoding report is lost."""
        return self._sample(FaultKind.CHANNEL_LOSS, self._plan.channel_loss)

    def in_outage(self, location: int, period: int) -> bool:
        """Whether the RSU at ``location`` is dark during ``period``.

        Deterministic (window lookup, no randomness); counted once per
        blanked encounter or upload so the fault total reflects the
        actual impact.
        """
        if not self._plan.outage_covers(location, period):
            return False
        self._record(FaultKind.OUTAGE)
        return True

    def upload_times_out(self) -> bool:
        """Whether one upload attempt times out in flight."""
        return self._sample(FaultKind.TIMEOUT, self._plan.timeout)

    def duplicate_upload(self) -> bool:
        """Whether the RSU re-sends this record."""
        return self._sample(FaultKind.DUPLICATE, self._plan.duplicate)

    def delay_upload(self) -> bool:
        """Whether this record is held back until the next flush."""
        return self._sample(FaultKind.DELAY, self._plan.delay)

    def drop_connection(self) -> bool:
        """Whether the chaos proxy severs this connection/chunk."""
        return self._sample(FaultKind.WIRE_DROP, self._plan.wire_drop)

    def delay_chunk(self) -> bool:
        """Whether the chaos proxy stalls this forwarded chunk."""
        return self._sample(FaultKind.WIRE_DELAY, self._plan.wire_delay)

    def truncate_chunk(self) -> bool:
        """Whether the proxy forwards half this chunk, then severs."""
        return self._sample(FaultKind.WIRE_TRUNCATE, self._plan.wire_truncate)

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Maybe flip one random bit of ``payload``.

        Returns the payload unchanged when the corruption draw misses
        (or the payload is empty); otherwise a copy with a single bit
        flipped at a substream-chosen offset.
        """
        if not payload or not self._sample(
            FaultKind.CORRUPTION, self._plan.corruption
        ):
            return payload
        rng = self._rngs[FaultKind.CORRUPTION.value]
        bit = int(rng.integers(0, len(payload) * 8))
        corrupted = bytearray(payload)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupted)
