"""A wire-level chaos proxy: real TCP faults between client and tier.

:class:`ChaosProxy` sits on the socket path between upload clients and
a sharded front door (or a single shard worker) and perturbs the
*bytes in flight* — the fault classes no in-process injector can
produce:

* **connection drops** (``wire_drop``) — the TCP stream dies at accept
  time or between chunks, mid-conversation;
* **stalls** (``wire_delay``) — a forwarded chunk arrives late, eating
  into client timeouts and deadlines;
* **truncation** (``wire_truncate``) — half a chunk is forwarded and
  the connection severed, leaving the receiver holding a torn
  length-prefixed message (exactly what
  :func:`~repro.server.sharded.wire.recv_message` must surface as
  :class:`~repro.exceptions.WireProtocolError`);
* **partitions** — :meth:`partition` refuses new connections and
  severs live ones until :meth:`heal`.

Fault decisions draw from the same seeded
:class:`~repro.faults.plan.FaultInjector` substreams as every other
fault in the repo, so a chaos drill replays byte-for-byte from one
master seed.  Faults are applied to the client→upstream direction
only: requests are what retry loops own; mangling replies would
punish the server for damage it never saw.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

from repro.faults.plan import FaultInjector

#: Forwarding buffer size; small enough that a multi-message burst
#: spans several chunks (giving per-chunk faults something to cut).
_CHUNK_BYTES = 16 * 1024


class ChaosProxy:
    """A TCP forwarder that injects wire faults on the request path.

    Parameters
    ----------
    upstream_host / upstream_port:
        Where honest bytes would have gone (normally the front door).
    injector:
        Fault source; None forwards everything faithfully (the no-op
        proxy, useful as a partition-only switch).
    host / port:
        Listening address (port 0 picks a free port).
    delay_seconds:
        Stall length of one injected ``wire_delay``.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        injector: Optional[FaultInjector] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        delay_seconds: float = 0.05,
    ):
        self._upstream = (upstream_host, int(upstream_port))
        self._injector = injector
        self._delay_seconds = float(delay_seconds)
        # The injector's numpy substreams are not thread-safe and every
        # connection pump consults them concurrently.
        self._injector_lock = threading.Lock()
        self._partitioned = threading.Event()
        self._stopped = threading.Event()
        self._conn_lock = threading.Lock()
        self._open_pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(32)
        self._host = host
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` clients should dial."""
        return f"tcp://{self._host}:{self.port}"

    def start(self) -> int:
        """Begin accepting; returns the bound port."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def stop(self) -> None:
        """Stop accepting and sever every live connection."""
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._sever_all()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def partition(self) -> None:
        """Sever every live connection and refuse new ones."""
        self._partitioned.set()
        self._sever_all()

    def heal(self) -> None:
        """End the partition; new connections flow again."""
        self._partitioned.clear()

    def _sever_all(self) -> None:
        with self._conn_lock:
            pairs, self._open_pairs = self._open_pairs, []
        for downstream, upstream in pairs:
            for sock in (downstream, upstream):
                try:
                    sock.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                downstream, _peer = self._listener.accept()
            except OSError:
                return
            if self._partitioned.is_set() or self._draw("drop"):
                # Refused at the door: the client sees a reset/EOF.
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(self._upstream, timeout=10)
            except OSError:
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            with self._conn_lock:
                self._open_pairs.append((downstream, upstream))
            threading.Thread(
                target=self._pump,
                args=(downstream, upstream, True),
                name="chaos-proxy-up",
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump,
                args=(upstream, downstream, False),
                name="chaos-proxy-down",
                daemon=True,
            ).start()

    def _draw(self, kind: str) -> bool:
        if self._injector is None:
            return False
        with self._injector_lock:
            if kind == "drop":
                return self._injector.drop_connection()
            if kind == "delay":
                return self._injector.delay_chunk()
            return self._injector.truncate_chunk()

    def _pump(
        self, source: socket.socket, sink: socket.socket, faulty: bool
    ) -> None:
        """Forward one direction until EOF/error; faults only upstream."""
        try:
            while not self._stopped.is_set():
                try:
                    chunk = source.recv(_CHUNK_BYTES)
                except OSError:
                    break
                if not chunk:
                    break
                if faulty:
                    if self._draw("drop"):
                        break
                    if self._draw("delay"):
                        time.sleep(self._delay_seconds)
                    if self._draw("truncate") and len(chunk) > 1:
                        try:
                            sink.sendall(chunk[: len(chunk) // 2])
                        except OSError:
                            pass
                        break
                try:
                    sink.sendall(chunk)
                except OSError:
                    break
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass
            with self._conn_lock:
                self._open_pairs = [
                    pair
                    for pair in self._open_pairs
                    if source not in pair and sink not in pair
                ]
