"""Aggregation of repeated simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class RunStatistics:
    """Summary of a sample of per-run values.

    The confidence interval uses the normal approximation (the paper
    averages 1000 runs, far into CLT territory; for small samples the
    interval is a rough guide, which is all the harness needs).
    """

    mean: float
    stddev: float
    minimum: float
    maximum: float
    count: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.stddev / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI for the mean (default 95%)."""
        margin = z * self.stderr
        return (self.mean - margin, self.mean + margin)


def summarize_runs(values: Sequence[float]) -> RunStatistics:
    """Summarize a non-empty sample of per-run values."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return RunStatistics(
        mean=mean,
        stddev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        count=n,
    )
