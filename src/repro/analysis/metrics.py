"""Accuracy metrics.

The paper's metric is the relative error ``|n̂ - n| / n`` (Section
II-C), reported as an average over many simulation runs.  Bias and
RMSE are included for the extended analyses (they distinguish the
approximation bias of Eq. 21 from pure estimation variance).
"""

from __future__ import annotations

import math
from typing import Sequence


def relative_error(estimate: float, actual: float) -> float:
    """The paper's metric: ``|estimate - actual| / actual``."""
    if actual <= 0:
        raise ValueError(f"actual value must be positive, got {actual}")
    return abs(estimate - actual) / actual


def mean_relative_error(estimates: Sequence[float], actual: float) -> float:
    """Average relative error of repeated estimates of one truth."""
    if not estimates:
        raise ValueError("at least one estimate is required")
    return sum(relative_error(e, actual) for e in estimates) / len(estimates)


def bias(estimates: Sequence[float], actual: float) -> float:
    """Mean signed deviation ``mean(estimate) - actual``."""
    if not estimates:
        raise ValueError("at least one estimate is required")
    return sum(estimates) / len(estimates) - actual


def rmse(estimates: Sequence[float], actual: float) -> float:
    """Root-mean-squared error of repeated estimates."""
    if not estimates:
        raise ValueError("at least one estimate is required")
    return math.sqrt(sum((e - actual) ** 2 for e in estimates) / len(estimates))
