"""A small parameter-sweep driver.

Every figure in the paper is a sweep: a grid of parameter points, a
number of independent runs per point, and an aggregate per point.
:func:`run_sweep` captures that shape once so the experiment modules
stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

import numpy as np

from repro.analysis.stats import RunStatistics, summarize_runs
from repro.exceptions import ConfigurationError

#: A measurement function: (point, rng) -> one per-run value.
Measurement = Callable[[Any, np.random.Generator], float]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated outcome."""

    point: Any
    statistics: RunStatistics

    @property
    def mean(self) -> float:
        """Mean per-run value at this point."""
        return self.statistics.mean


def run_sweep(
    points: Sequence[Any],
    measure: Measurement,
    runs: int,
    seed: int = 0,
) -> List[SweepPoint]:
    """Run ``measure`` ``runs`` times per point and aggregate.

    Each (point, run) pair gets an independent, deterministic RNG
    stream derived from ``seed``, so sweeps are reproducible and
    order-independent.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if not points:
        raise ConfigurationError("a sweep needs at least one point")
    results: List[SweepPoint] = []
    for point_index, point in enumerate(points):
        values = []
        for run_index in range(runs):
            rng = np.random.default_rng([seed, point_index, run_index])
            values.append(float(measure(point, rng)))
        results.append(SweepPoint(point=point, statistics=summarize_runs(values)))
    return results
