"""Statistics and sweep utilities for evaluating the estimators.

* :mod:`repro.analysis.metrics` — relative error (the paper's accuracy
  metric), bias, RMSE.
* :mod:`repro.analysis.stats` — multi-run aggregation with confidence
  intervals.
* :mod:`repro.analysis.sweep` — a small driver for parameter sweeps
  (repeat a measurement function over a grid, aggregate the results).
* :mod:`repro.analysis.theory` — analytical (conservative) standard
  deviations and confidence intervals for the estimators.
"""

from repro.analysis.metrics import bias, mean_relative_error, relative_error, rmse
from repro.analysis.stats import RunStatistics, summarize_runs
from repro.analysis.sweep import SweepPoint, run_sweep
from repro.analysis.theory import (
    point_confidence_interval,
    point_estimate_stddev,
    point_to_point_confidence_interval,
    point_to_point_estimate_stddev,
)

__all__ = [
    "RunStatistics",
    "SweepPoint",
    "bias",
    "mean_relative_error",
    "point_confidence_interval",
    "point_estimate_stddev",
    "point_to_point_confidence_interval",
    "point_to_point_estimate_stddev",
    "relative_error",
    "rmse",
    "run_sweep",
    "summarize_runs",
]
