"""Analytical error models for the estimators (extension).

The paper reports empirical relative errors; a deployment also wants
*per-query* uncertainty without re-running anything.  This module
derives delta-method standard deviations for both estimators from the
same per-bit occupancy model the estimators themselves are built on.

Approximation (shared by both): bits are treated as independent
Bernoulli draws.  Occupancy counts are in fact negatively correlated
across bits (balls-in-bins), so the predictions are **conservative
upper bounds** on the true spread — the same direction and reason the
naive binomial variance over-states Whang et al.'s linear-counting
variance.  Empirically (see ``tests/test_analysis_theory.py``): the
point-estimator bound runs ~3× above the Monte-Carlo spread at the
paper's f = 2 loads, and the point-to-point bound is within ~10%
(its OR-join statistics sit near-saturated-zero where the correction
vanishes).  Confidence intervals built from these bounds therefore
*over*-cover, which is the safe failure mode for a reporting system.

Counting floor: when the AND-joins are extremely sparse (zero
fractions near 1) the occupancy-sampling terms of the point-to-point
model cancel to numerical zero — the neglected within-block
correlations are the same order as the signal there.  Both models
therefore floor the variance at the Poisson counting term ``n̂``
(each common vehicle contributes an approximately independent
signature, so no estimator of this family can beat ~``sqrt(n̂)``
spread), keeping the reported uncertainty honest in that regime.

Point estimator (Eq. 12).  Per bit, ``V*_1``'s indicator is the
*deterministic* function ``(1−a)(1−b)`` of the half indicators
``a = 1{E_a = 0}`` and ``b = 1{E_b = 0}``, so the quantity Eq. 12
takes a log of, ``D = V*_1 + V_a0 + V_b0 − 1``, is exactly the mean of
the per-bit product ``a·b``.  Parameterizing by ``(A, B, C)`` with
``A = V_a0``, ``B = V_b0``, ``C = D = mean(ab)``:

    n̂ = (ln A + ln B − ln C) / L,   L = ln(1 − 1/m)

with gradient ``(1/(AL), 1/(BL), −1/(CL))`` and per-bit moments
``Var(a) = A(1−A)``, ``Var(b) = B(1−B)``, ``Var(ab) = C(1−C)``,
``Cov(a, ab) = C(1−A)``, ``Cov(b, ab) = C(1−B)`` (all exact:
``a·ab = ab``), and ``Cov(a, b) = C − A·B`` (exact by definition of
``C``).  Everything is evaluated at measured statistics — no model
parameter beyond per-bit independence enters.

Point-to-point estimator (Eq. 21).  With ``Z = V''_0`` (m′ bits),
``U = V_0`` (m bits), ``V = V'_0`` (m′ bits) and
``n̂'' = s·m′(ln Z − ln U − ln V)``:  ``Cov(Z, V) = Z(1−V)/m′`` and
``Cov(Z, U) = Z(1−U)/m`` exactly (a zero in the OR-join forces zeros
in both components), and ``Cov(U, V) = (Z − U·V)/m`` (aligned bits are
linked only through the common vehicles, whose joint-zero probability
is exactly ``E[Z]``).
"""

from __future__ import annotations

import math

from repro.core.results import PointEstimate, PointToPointEstimate
from repro.exceptions import EstimationError


def point_estimate_stddev(estimate: PointEstimate) -> float:
    """Conservative standard-deviation bound for a point estimate.

    See the module docstring: exact per-bit moments, independent-bits
    approximation, upper-bound semantics.
    """
    a = estimate.v_a0
    b = estimate.v_b0
    s1 = estimate.v_star1
    m = estimate.size
    c = s1 + a + b - 1.0  # = mean(ab), see the module docstring
    if c <= 0 or a <= 0 or b <= 0:
        raise EstimationError(
            "cannot evaluate the variance model at degenerate statistics"
        )
    log_base = math.log(1.0 - 1.0 / m)

    # Gradient of (ln A + ln B - ln C)/L and exact per-bit moments of
    # (a, b, ab); the quadratic form divides by m for the mean.
    var_a = a * (1.0 - a)
    var_b = b * (1.0 - b)
    var_c = c * (1.0 - c)
    cov_ab = c - a * b
    cov_ac = c * (1.0 - a)
    cov_bc = c * (1.0 - b)

    quadratic = (
        var_a / (a * a)
        + var_b / (b * b)
        + var_c / (c * c)
        + 2.0 * cov_ab / (a * b)
        - 2.0 * cov_ac / (a * c)
        - 2.0 * cov_bc / (b * c)
    )
    variance = quadratic / (m * log_base * log_base)
    return math.sqrt(max(variance, max(estimate.estimate, 0.0)))


def point_to_point_estimate_stddev(estimate: PointToPointEstimate) -> float:
    """Conservative standard-deviation bound for a p2p estimate.

    Empirically tight (within ~10%) at the paper's operating points;
    see the module docstring for why.
    """
    z = estimate.v_double_prime_0
    u = estimate.v_0
    v = estimate.v_prime_0
    m = estimate.size_small
    m_prime = estimate.size_large
    s = estimate.s
    if z <= 0 or u <= 0 or v <= 0:
        raise EstimationError(
            "cannot evaluate the variance model at degenerate statistics"
        )

    var_z = z * (1.0 - z) / m_prime
    var_u = u * (1.0 - u) / m
    var_v = v * (1.0 - v) / m_prime
    cov_zv = z * (1.0 - v) / m_prime
    cov_zu = z * (1.0 - u) / m
    cov_uv = (z - u * v) / m

    relative_variance = (
        var_z / (z * z)
        + var_u / (u * u)
        + var_v / (v * v)
        - 2.0 * cov_zu / (z * u)
        - 2.0 * cov_zv / (z * v)
        + 2.0 * cov_uv / (u * v)
    )
    scale = s * m_prime
    variance = scale * scale * max(relative_variance, 0.0)
    return math.sqrt(max(variance, max(estimate.estimate, 0.0)))


def point_confidence_interval(
    estimate: PointEstimate, z_score: float = 1.96
) -> tuple:
    """Normal-approximation CI around a point persistent estimate."""
    margin = z_score * point_estimate_stddev(estimate)
    return (estimate.estimate - margin, estimate.estimate + margin)


def point_to_point_confidence_interval(
    estimate: PointToPointEstimate, z_score: float = 1.96
) -> tuple:
    """Normal-approximation CI around a point-to-point estimate."""
    margin = z_score * point_to_point_estimate_stddev(estimate)
    return (estimate.estimate - margin, estimate.estimate + margin)
