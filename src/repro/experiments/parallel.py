"""Process-parallel execution of independent experiment cells.

Every experiment sweep is embarrassingly parallel at *cell*
granularity — a Fig. 4 target point, a Table I location column, a
Table II attack cell — because each cell derives its own random
generators from the master seed (``default_rng([seed, ...cell ids])``)
and never shares mutable state with its neighbours.  :func:`map_cells`
exploits that: it runs a picklable cell function over the cell list
either in-process (``workers=1``, the default — byte-identical to the
historical serial harness) or across a ``ProcessPoolExecutor``.

Determinism contract
--------------------
``map_cells`` returns results in the order of ``items`` regardless of
worker count or completion order (``executor.map`` preserves input
order), and cell functions derive all randomness from per-cell seeds,
so ``workers=N`` output is byte-identical to ``workers=1`` for every
experiment.  The equivalence is enforced by
``tests/test_experiments_parallel.py``.

Cross-process observability: when the parent is collecting metrics,
each worker activates a *fresh local registry* around its cell,
snapshots it, and ships the snapshot home with the result; the parent
folds every snapshot into its own registry via
:meth:`~repro.obs.metrics.MetricsRegistry.merge` (in input order, so
the merged totals are deterministic).  A ``--workers N`` run therefore
reports the same join/estimator/cache counters as a serial run — plus
``repro_registry_merges_total`` counting the folds.  The parent also
records per-cell wall-clock times (``repro_parallel_cell_seconds``)
and cell counts (``repro_parallel_cells_total``) measured inside the
(pickled) cell wrapper.

Pool reuse: forking a fresh ``ProcessPoolExecutor`` per sweep costs
hundreds of milliseconds of worker spawn-and-import before the first
cell runs, which dominates small sweeps.  The harness therefore keeps
one module-level pool alive across :func:`map_cells` calls, growing it
when a call asks for more workers than the resident pool has; call
:func:`shutdown_pool` to release the workers (tests do, and it is
registered via :mod:`atexit` for interpreter shutdown).
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exceptions import ConfigurationError
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, (re)built when more workers are needed.

    A pool with *more* workers than requested is reused as-is — idle
    workers are free, respawning is not — so alternating sweep sizes
    don't thrash the pool.
    """
    global _shared_pool, _shared_pool_workers
    if _shared_pool is None or _shared_pool_workers < workers:
        if _shared_pool is not None:
            _shared_pool.shutdown()
        _shared_pool = ProcessPoolExecutor(max_workers=workers)
        _shared_pool_workers = workers
    return _shared_pool


def shutdown_pool() -> None:
    """Release the shared worker pool (no-op when none is alive)."""
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        _shared_pool.shutdown()
        _shared_pool = None
        _shared_pool_workers = 0


atexit.register(shutdown_pool)


class _TimedCell:
    """Picklable wrapper timing (and optionally metering) one cell.

    The elapsed time is measured *inside* the worker and returned with
    the result, so the parent can observe per-cell durations even when
    the cell ran in a child process.

    When ``collect`` is set (the parent was collecting metrics at
    dispatch time) *and* the call executes in a different process than
    the one that built the wrapper (a real worker — detected by PID,
    because a forked worker *inherits* the parent's enabled registry
    and would otherwise record into a doomed copy), the call activates
    a fresh local registry around the cell and ships its snapshot home.
    In the serial in-process path instrumentation records live and no
    snapshot is taken.
    """

    def __init__(self, func: Callable[[ItemT], ResultT], collect: bool = False):
        self._func = func
        self._collect = collect
        self._parent_pid = os.getpid()

    def __call__(self, item: ItemT):
        collect = self._collect and os.getpid() != self._parent_pid
        snapshot = None
        started = time.perf_counter()
        if collect:
            local = MetricsRegistry()
            obs.enable(registry=local)
            try:
                result = self._func(item)
            finally:
                obs.disable()
            snapshot = local.snapshot()
        else:
            result = self._func(item)
        return time.perf_counter() - started, snapshot, result


#: Bound handles per experiment name: the label value is open-ended,
#: so handles are created on first sight and reused for every later
#: cell of the same experiment.
_CELL_HANDLES: Dict[str, Tuple[obs.BoundMetric, obs.BoundMetric]] = {}


def _observe_cell(experiment: str, seconds: float) -> None:
    if not obs.enabled():
        return
    handles = _CELL_HANDLES.get(experiment)
    if handles is None:
        handles = (
            obs.bind_counter(
                "repro_parallel_cells_total",
                "Experiment cells executed through the parallel harness.",
                experiment=experiment,
            ),
            obs.bind_histogram(
                "repro_parallel_cell_seconds",
                "Wall-clock time of one experiment cell (measured in-worker).",
                experiment=experiment,
            ),
        )
        _CELL_HANDLES[experiment] = handles
    handles[0].inc()
    handles[1].observe(seconds)


def map_cells(
    func: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    workers: int = 1,
    experiment: str = "",
    chunksize: int = 1,
) -> List[ResultT]:
    """Run ``func`` over ``items``, optionally across worker processes.

    Parameters
    ----------
    func:
        The cell function.  With ``workers > 1`` it must be picklable
        (a module-level function or a ``functools.partial`` of one)
        and so must the items and results.
    items:
        The independent cells, in output order.
    workers:
        ``1`` (default) runs in-process — the historical serial path,
        with full observability.  ``N > 1`` fans the cells out over a
        shared :class:`~concurrent.futures.ProcessPoolExecutor` that
        stays warm across calls (see :func:`shutdown_pool`).
    experiment:
        Label for the harness's metrics.
    chunksize:
        Cells dispatched per worker round-trip.  ``1`` (default)
        maximizes balance; larger values amortize pickling overhead
        for sweeps of many tiny cells.  Never changes the output:
        ``executor.map`` reassembles results in input order for every
        chunking.

    Returns
    -------
    list
        ``[func(item) for item in items]`` — same values, same order,
        for every worker count and chunk size.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    cells: Sequence[ItemT] = list(items)
    collecting = obs.enabled()
    if collecting:
        # Pre-register so serial and parallel runs export the same
        # series (zero merges in serial, N in parallel).
        obs.counter(
            "repro_registry_merges_total",
            "Cross-process registry snapshots merged into this one.",
        )
    timed_func = _TimedCell(func, collect=collecting)
    if workers == 1 or len(cells) <= 1:
        timed = [timed_func(item) for item in cells]
    else:
        pool = _get_pool(workers)
        # executor.map preserves input order, which is what makes
        # parallel output byte-identical to serial.
        timed = list(pool.map(timed_func, cells, chunksize=chunksize))
    results: List[ResultT] = []
    parent = obs.registry()
    for seconds, snapshot, result in timed:
        if snapshot:
            parent.merge(snapshot)
        _observe_cell(experiment, seconds)
        results.append(result)
    return results
