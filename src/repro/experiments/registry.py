"""Registry mapping experiment names to (run, format) pairs."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.experiments.common import ExperimentConfig, cell_timer
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2

#: name -> (run function taking an ExperimentConfig, format function).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (run_table1, format_table1),
    "table2": (run_table2, format_table2),
    "fig4": (run_fig4, format_fig4),
    "fig5": (run_fig5, format_fig5),
    "fig6": (run_fig6, format_fig6),
}


def run_experiment(name: str, config: ExperimentConfig) -> str:
    """Run one experiment by name and return its rendered artifact."""
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    run, fmt = EXPERIMENTS[name]
    with cell_timer(name, "total"):
        return fmt(run(config))
