"""Table II: the privacy tradeoff grid (analytic, Section VI-C).

The probabilistic noise-to-information ratio for
``s ∈ {2,3,4,5}`` × ``f ∈ {1, 1.5, 2, 2.5, 3, 3.5, 4}`` plus the
noise-probability row ``p``.  These are closed forms —
``s·(e^{1/f} - 1)`` and ``1 - e^{-1/f}`` — so reproduction is exact;
the experiment optionally cross-checks each cell against the empirical
tracking attack (:mod:`repro.privacy.attack`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ExperimentConfig
from repro.experiments.parallel import map_cells
from repro.experiments.report import format_table
from repro.privacy.analysis import (
    asymptotic_noise_probability,
    asymptotic_noise_to_information_ratio,
)
from repro.privacy.attack import TrackingAttack
from repro.sketch.sizing import next_power_of_two

#: The paper's Table II grid.
S_VALUES: Tuple[int, ...] = (2, 3, 4, 5)
F_VALUES: Tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)

#: The paper's Table II values, transcribed for side-by-side checks.
PAPER_RATIOS: Dict[Tuple[int, float], float] = {
    (2, 1.0): 3.4368, (2, 1.5): 1.8956, (2, 2.0): 1.2975, (2, 2.5): 0.9837,
    (2, 3.0): 0.7912, (2, 3.5): 0.6614, (2, 4.0): 0.5681,
    (3, 1.0): 5.1553, (3, 1.5): 2.8433, (3, 2.0): 1.9462, (3, 2.5): 1.4755,
    (3, 3.0): 1.1869, (3, 3.5): 0.9922, (3, 4.0): 0.852,
    (4, 1.0): 6.8737, (4, 1.5): 3.7911, (4, 2.0): 2.5950, (4, 2.5): 1.9673,
    (4, 3.0): 1.5825, (4, 3.5): 1.3229, (4, 4.0): 1.1361,
    (5, 1.0): 8.5921, (5, 1.5): 4.7389, (5, 2.0): 3.2437, (5, 2.5): 2.4592,
    (5, 3.0): 1.9781, (5, 3.5): 1.6536, (5, 4.0): 1.4201,
}

PAPER_NOISE: Dict[float, float] = {
    1.0: 0.6321, 1.5: 0.4866, 2.0: 0.3935, 2.5: 0.3297,
    3.0: 0.2835, 3.5: 0.2485, 4.0: 0.2212,
}


@dataclass(frozen=True)
class Table2Result:
    """Analytic (and optionally empirical) Table II values."""

    ratios: Dict[Tuple[int, float], float]
    noise: Dict[float, float]
    empirical_ratios: Optional[Dict[Tuple[int, float], float]]
    config: ExperimentConfig


def _attack_cell(
    cell: Tuple[int, float], seed: int, attack_trials: int, attack_volume: int
) -> float:
    """Empirically validate one (s, f) cell via the tracking attack."""
    s, f = cell
    m_prime = next_power_of_two(int(attack_volume * f))
    # Scale n' so the realized load matches f exactly (Table II's
    # asymptotic forms assume m' = f·n').
    n_prime = int(round(m_prime / f))
    attack = TrackingAttack(n_prime=n_prime, m_prime=m_prime, s=s, seed=seed)
    return attack.run(attack_trials).empirical_ratio


def run_table2(
    config: ExperimentConfig = ExperimentConfig(),
    empirical: bool = False,
    attack_trials: int = 2000,
    attack_volume: int = 4096,
) -> Table2Result:
    """Compute Table II; optionally validate cells by simulated attack.

    Empirical validation runs the tracking adversary of Section V with
    ``n' = attack_volume`` vehicles and ``m'`` sized per Eq. 2 for
    each (s, f) cell.  Expect agreement within Monte-Carlo noise.
    """
    ratios = {
        (s, f): asymptotic_noise_to_information_ratio(s, f)
        for s in S_VALUES
        for f in F_VALUES
    }
    noise = {f: asymptotic_noise_probability(f) for f in F_VALUES}
    empirical_ratios = None
    if empirical:
        grid = [(s, f) for s in S_VALUES for f in F_VALUES]
        measured = map_cells(
            partial(
                _attack_cell,
                seed=config.seed,
                attack_trials=attack_trials,
                attack_volume=attack_volume,
            ),
            grid,
            workers=config.workers,
            experiment="table2",
        )
        empirical_ratios = dict(zip(grid, measured))
    return Table2Result(
        ratios=ratios, noise=noise, empirical_ratios=empirical_ratios, config=config
    )


def format_table2(result: Table2Result) -> str:
    """Render Table II (with paper values and any empirical checks)."""
    headers = ["s \\ f"] + [f"f={f:g}" for f in F_VALUES]
    rows: List[List[object]] = []
    for s in S_VALUES:
        rows.append([f"s={s}"] + [result.ratios[(s, f)] for f in F_VALUES])
        rows.append(
            [f"  paper s={s}"] + [PAPER_RATIOS[(s, f)] for f in F_VALUES]
        )
        if result.empirical_ratios is not None:
            rows.append(
                [f"  attack s={s}"]
                + [result.empirical_ratios[(s, f)] for f in F_VALUES]
            )
    rows.append(["p"] + [result.noise[f] for f in F_VALUES])
    rows.append(["  paper p"] + [PAPER_NOISE[f] for f in F_VALUES])
    title = "Table II: probabilistic noise-to-information ratio and noise p"
    return format_table(headers, rows, title=title)
