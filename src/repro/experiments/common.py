"""Shared configuration for the experiment harness.

The paper's global settings: ``s = 3`` and ``f = 2`` unless a sweep
says otherwise, relative error averaged over many runs.  The paper
uses 1000 runs per cell; the default here is smaller so the recorded
artifacts regenerate in minutes — pass ``--runs`` (CLI) or
``runs=...`` (API) to match the paper's 1000.
"""

from __future__ import annotations

import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import runtime as obs

#: The paper's default representative-bit parameter.
DEFAULT_S = 3

#: The paper's default load factor.
DEFAULT_LOAD_FACTOR = 2.0

#: Default runs per experiment cell (paper: 1000).
DEFAULT_RUNS = 20


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``workers`` fans independent experiment cells out over that many
    processes (see :mod:`repro.experiments.parallel`); results are
    byte-identical to the default serial run because every cell seeds
    its own generators.
    """

    runs: int = DEFAULT_RUNS
    seed: int = 2017  # the paper's year; any fixed value works
    s: int = DEFAULT_S
    load_factor: float = DEFAULT_LOAD_FACTOR
    workers: int = 1

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        if self.s < 1:
            raise ConfigurationError(f"s must be >= 1, got {self.s}")
        if self.load_factor <= 0:
            raise ConfigurationError(
                f"load factor must be positive, got {self.load_factor}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )


def bench_environment() -> Dict[str, object]:
    """The software environment a benchmark artifact was measured on.

    Benchmark artifacts (``BENCH_*.json``) embed this next to the
    hardware block so a figure can be read in context: the packed-word
    popcount path in particular differs by numpy version —
    ``np.bitwise_count`` (numpy >= 2.0) versus the byte-LUT fallback —
    and throughput figures are not comparable across that boundary.
    """
    from repro.sketch.backends import HAVE_BITWISE_COUNT

    return {
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "numpy_bitwise_count": HAVE_BITWISE_COUNT,
    }


@contextmanager
def cell_timer(experiment: str, cell: str) -> Iterator[None]:
    """Time one experiment cell into ``repro_experiment_cell_seconds``.

    A *cell* is one unit of the sweep (a Table I location column, a
    Fig. 4 target point, a whole experiment run — whatever granularity
    the caller chooses).  Free while observability is disabled.
    """
    if not obs.enabled():
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        obs.histogram(
            "repro_experiment_cell_seconds",
            "Wall-clock time of one experiment cell.",
            experiment=experiment,
            cell=cell,
        ).observe(time.perf_counter() - started)
