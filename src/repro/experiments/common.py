"""Shared configuration for the experiment harness.

The paper's global settings: ``s = 3`` and ``f = 2`` unless a sweep
says otherwise, relative error averaged over many runs.  The paper
uses 1000 runs per cell; the default here is smaller so the recorded
artifacts regenerate in minutes — pass ``--runs`` (CLI) or
``runs=...`` (API) to match the paper's 1000.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: The paper's default representative-bit parameter.
DEFAULT_S = 3

#: The paper's default load factor.
DEFAULT_LOAD_FACTOR = 2.0

#: Default runs per experiment cell (paper: 1000).
DEFAULT_RUNS = 20


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    runs: int = DEFAULT_RUNS
    seed: int = 2017  # the paper's year; any fixed value works
    s: int = DEFAULT_S
    load_factor: float = DEFAULT_LOAD_FACTOR

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        if self.s < 1:
            raise ConfigurationError(f"s must be >= 1, got {self.s}")
        if self.load_factor <= 0:
            raise ConfigurationError(
                f"load factor must be positive, got {self.load_factor}"
            )
