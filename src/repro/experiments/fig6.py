"""Fig. 6: the Fig. 5 scatter panels at f = 3.

Same workloads and estimators as Fig. 5
(:mod:`repro.experiments.fig5`); only the load factor changes.  The
reproduction target is the *comparison*: the f = 3 clouds must hug the
equality line visibly tighter than the f = 2 clouds, demonstrating the
accuracy side of the accuracy-privacy tradeoff (the privacy side is
Table II, where f = 3 scores worse).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig5 import ScatterResult, format_scatter, run_scatter


def run_fig6(
    config: ExperimentConfig = ExperimentConfig(),
    points_per_target: int = 1,
) -> ScatterResult:
    """Fig. 6: measurement-accuracy scatter at f = 3."""
    return run_scatter(3.0, config, points_per_target)


def format_fig6(result: ScatterResult) -> str:
    """Render Fig. 6."""
    return format_scatter(result, "Fig. 6")
