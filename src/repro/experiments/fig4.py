"""Fig. 4: proposed point estimator vs the direct AND-join benchmark.

Synthetic workload of Section VI-B: per-period volumes uniform over
(2000, 10000], persistent volume swept from 0.01·n_min to 0.5·n_min in
steps of 0.01·n_min, s = 3, f = 2.  Left plot t = 5, right plot
t = 10; the y-axis is mean relative error.

Expected shape (what reproduction means): the benchmark's error blows
up as the persistent volume shrinks (surviving transient collisions
dominate), the proposed estimator stays near zero throughout, and both
improve markedly from t = 5 to t = 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Tuple

import numpy as np

from repro.analysis.stats import summarize_runs
from repro.core.baselines import DirectAndBenchmark
from repro.core.point import PointPersistentEstimator
from repro.experiments.common import ExperimentConfig, cell_timer
from repro.experiments.parallel import map_cells
from repro.experiments.report import ascii_series, format_table
from repro.traffic.synthetic import SyntheticPointScenario, expected_volume
from repro.traffic.workloads import PointWorkload

#: The two panels of Fig. 4.
T_VALUES: Tuple[int, ...] = (5, 10)

#: Location ID used for the synthetic single-location workload.
LOCATION = 1


@dataclass(frozen=True)
class Fig4Point:
    """One x-position of a Fig. 4 curve."""

    n_star: int
    proposed_error: float
    benchmark_error: float


@dataclass(frozen=True)
class Fig4Panel:
    """One panel (one t value) of Fig. 4."""

    t: int
    volumes: Tuple[int, ...]
    points: List[Fig4Point]


@dataclass(frozen=True)
class Fig4Result:
    """Both panels of Fig. 4."""

    panels: List[Fig4Panel]
    config: ExperimentConfig


def _panel_cell(
    item: Tuple[int, int],
    t: int,
    volumes: Tuple[int, ...],
    config: ExperimentConfig,
) -> Fig4Point:
    """One sweep point: all of a target's runs through the batch engine.

    Module-level (and driven by ``functools.partial``) so the parallel
    harness can pickle it.  Each cell derives its own run generators
    from ``[seed, t, target_index, run_index]``, matching the
    historical serial loop draw for draw, and the batch pipeline is
    bit-identical to per-run generation + estimation — so this cell
    produces the same floats the seed harness did, at any worker count.
    """
    target_index, n_star = item
    with cell_timer("fig4", f"t={t},n*={n_star}"):
        workload = PointWorkload(
            s=config.s, load_factor=config.load_factor, key_seed=config.seed
        )
        rngs = [
            np.random.default_rng([config.seed, t, target_index, run_index])
            for run_index in range(config.runs)
        ]
        batch = workload.generate_batch(
            n_star=n_star,
            volumes=volumes,
            location=LOCATION,
            rngs=rngs,
            expected_volume=expected_volume(),
        )
        proposed_errors = [
            estimate.relative_error(n_star)
            for estimate in PointPersistentEstimator().estimate_batch(
                batch.batches
            )
        ]
        benchmark_errors = [
            estimate.relative_error(n_star)
            for estimate in DirectAndBenchmark().estimate_batch(batch.batches)
        ]
    return Fig4Point(
        n_star=n_star,
        proposed_error=summarize_runs(proposed_errors).mean,
        benchmark_error=summarize_runs(benchmark_errors).mean,
    )


def _run_panel(
    t: int, config: ExperimentConfig, fraction_step: int
) -> Fig4Panel:
    scenario_rng = np.random.default_rng([config.seed, t, 0xF160])
    scenario = SyntheticPointScenario.draw(scenario_rng, periods=t)
    targets = scenario.persistent_targets()[::fraction_step]

    points = map_cells(
        partial(_panel_cell, t=t, volumes=scenario.volumes, config=config),
        list(enumerate(targets)),
        workers=config.workers,
        experiment="fig4",
    )
    return Fig4Panel(t=t, volumes=scenario.volumes, points=points)


def run_fig4(
    config: ExperimentConfig = ExperimentConfig(),
    fraction_step: int = 1,
) -> Fig4Result:
    """Reproduce both panels of Fig. 4.

    ``fraction_step`` subsamples the 50-point sweep (e.g. 5 keeps
    every fifth point) for quick runs; 1 reproduces the full grid.
    """
    panels = [_run_panel(t, config, fraction_step) for t in T_VALUES]
    return Fig4Result(panels=panels, config=config)


def format_fig4(result: Fig4Result) -> str:
    """Render Fig. 4 as charts plus the underlying numbers."""
    blocks: List[str] = []
    for panel in result.panels:
        chart = ascii_series(
            [
                (
                    "proposed",
                    [(p.n_star, p.proposed_error) for p in panel.points],
                ),
                (
                    "benchmark",
                    [(p.n_star, p.benchmark_error) for p in panel.points],
                ),
            ],
            title=(
                f"Fig. 4 (t={panel.t}): relative error vs actual persistent "
                f"volume (runs={result.config.runs})"
            ),
        )
        table = format_table(
            ["n*", "proposed", "benchmark"],
            [
                [p.n_star, p.proposed_error, p.benchmark_error]
                for p in panel.points
            ],
        )
        blocks.append(chart + "\n\n" + table)
    return "\n\n".join(blocks)
