"""Table I: point-to-point persistent traffic on the Sioux Falls data.

For each of eight locations ``L`` against the busiest location ``L'``
(n' = 451,000), the experiment simulates 10 measurement periods in
which the ``n''`` common vehicles pass both locations every period and
each location additionally sees fresh transients filling its volume
(Section VI-A).  Relative errors are reported for ``t ∈ {3,5,7,10}``
(prefixes of the 10 periods, one generation per run serving all
``t``), plus the same-size-bitmap baseline at ``t = 5``.

Workload parameters come from :func:`repro.traffic.sioux_falls.
table1_parameters` — the paper's own Table I values — so this is the
headline apples-to-apples reproduction.  A trip-table mode
(``from_trip_table=True``) derives the same parameters from the
embedded OD matrix instead, exercising the full data pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import RunStatistics, summarize_runs
from repro.core.point_to_point import PointToPointPersistentEstimator
from repro.experiments.common import ExperimentConfig, cell_timer
from repro.experiments.parallel import map_cells
from repro.experiments.report import format_table
from repro.sketch.sizing import bitmap_size_for_volume
from repro.traffic.sioux_falls import (
    L_PRIME_ZONE,
    M_PRIME,
    N_PRIME,
    Table1Row,
    sioux_falls_trip_table,
    table1_parameters,
)
from repro.traffic.workloads import PointToPointWorkload

#: The t values reported by the paper's Table I.
T_VALUES: Tuple[int, ...] = (3, 5, 7, 10)

#: Total simulated periods per run (the paper simulates 10).
TOTAL_PERIODS = 10

#: The t at which the same-size baseline row is evaluated.
SAME_SIZE_T = 5


@dataclass(frozen=True)
class Table1Cell:
    """Measured statistics for one (location, t) cell."""

    statistics: RunStatistics

    @property
    def relative_error(self) -> float:
        """Mean relative error over the runs."""
        return self.statistics.mean


@dataclass(frozen=True)
class Table1LocationResult:
    """All measured cells for one location column."""

    row: Table1Row
    errors_by_t: Dict[int, Table1Cell]
    same_size_error: Table1Cell


@dataclass(frozen=True)
class Table1Result:
    """The full reproduced Table I."""

    locations: List[Table1LocationResult]
    config: ExperimentConfig


def _derive_rows_from_trip_table() -> List[Table1Row]:
    """Build Table1Row-equivalents from the embedded OD matrix."""
    table = sioux_falls_trip_table()
    rows = []
    for row in table1_parameters():
        n = int(round(table.involved_volume(row.zone)))
        npp = int(round(table.pair_volume(row.zone, L_PRIME_ZONE)))
        m = bitmap_size_for_volume(n, 2.0)
        rows.append(
            Table1Row(
                index=row.index,
                zone=row.zone,
                n=n,
                m=m,
                m_prime_ratio=M_PRIME // m,
                n_double_prime=npp,
                paper_relative_error=row.paper_relative_error,
                paper_same_size_error=row.paper_same_size_error,
            )
        )
    return rows


def _measure_location(
    row: Table1Row, config: ExperimentConfig, location_seed: int
) -> Table1LocationResult:
    workload = PointToPointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    estimator = PointToPointPersistentEstimator(config.s)
    errors_by_t: Dict[int, List[float]] = {t: [] for t in T_VALUES}
    same_size_errors: List[float] = []

    for run_index in range(config.runs):
        rng = np.random.default_rng([config.seed, location_seed, run_index])
        # One 10-period generation serves every t as a prefix.
        result = workload.generate(
            n_double_prime=row.n_double_prime,
            volumes_a=[row.n] * TOTAL_PERIODS,
            volumes_b=[N_PRIME] * TOTAL_PERIODS,
            location_a=row.zone,
            location_b=L_PRIME_ZONE,
            rng=rng,
            fixed_sizes=([row.m] * TOTAL_PERIODS, [M_PRIME] * TOTAL_PERIODS),
        )
        for t in T_VALUES:
            estimate = estimator.estimate(
                result.records_a[:t], result.records_b[:t]
            )
            errors_by_t[t].append(
                estimate.relative_error(row.n_double_prime)
            )
        # Same-size baseline: L' forced down to L's bitmap size.
        rng_baseline = np.random.default_rng(
            [config.seed, location_seed, run_index, 9]
        )
        baseline = workload.generate(
            n_double_prime=row.n_double_prime,
            volumes_a=[row.n] * SAME_SIZE_T,
            volumes_b=[N_PRIME] * SAME_SIZE_T,
            location_a=row.zone,
            location_b=L_PRIME_ZONE,
            rng=rng_baseline,
            fixed_sizes=([row.m] * SAME_SIZE_T, [row.m] * SAME_SIZE_T),
        )
        baseline_estimate = estimator.estimate(
            baseline.records_a, baseline.records_b
        )
        same_size_errors.append(
            baseline_estimate.relative_error(row.n_double_prime)
        )

    return Table1LocationResult(
        row=row,
        errors_by_t={
            t: Table1Cell(statistics=summarize_runs(errors))
            for t, errors in errors_by_t.items()
        },
        same_size_error=Table1Cell(statistics=summarize_runs(same_size_errors)),
    )


def _measure_column(
    row: Table1Row, config: ExperimentConfig
) -> Table1LocationResult:
    """One Table I location column — the parallel harness's cell.

    The column's generators derive from ``[seed, row.index, run]``
    alone, so columns are independent and any worker count reproduces
    the serial output exactly.
    """
    with cell_timer("table1", f"L{row.index}"):
        return _measure_location(row, config, location_seed=row.index)


def run_table1(
    config: ExperimentConfig = ExperimentConfig(),
    from_trip_table: bool = False,
) -> Table1Result:
    """Reproduce Table I.

    Parameters
    ----------
    config:
        Runs/seed/s/f settings.  The paper uses s=3, f=2, 1000 runs.
    from_trip_table:
        When True, derive (n, n'', m) from the embedded OD matrix
        instead of using the paper's transcribed parameters.
    """
    rows = _derive_rows_from_trip_table() if from_trip_table else table1_parameters()
    locations = map_cells(
        partial(_measure_column, config=config),
        rows,
        workers=config.workers,
        experiment="table1",
    )
    return Table1Result(locations=locations, config=config)


def format_table1(result: Table1Result) -> str:
    """Render the reproduced Table I with paper values alongside."""
    headers = ["L"] + [str(loc.row.index) for loc in result.locations]
    rows: List[List[object]] = []
    rows.append(["n"] + [loc.row.n for loc in result.locations])
    rows.append(["m"] + [loc.row.m for loc in result.locations])
    rows.append(["m'/m"] + [loc.row.m_prime_ratio for loc in result.locations])
    rows.append(["n''"] + [loc.row.n_double_prime for loc in result.locations])
    for t in T_VALUES:
        rows.append(
            [f"rel err (t={t})"]
            + [loc.errors_by_t[t].relative_error for loc in result.locations]
        )
        rows.append(
            [f"  paper (t={t})"]
            + [loc.row.paper_relative_error[t] for loc in result.locations]
        )
    rows.append(
        [f"same-size (t={SAME_SIZE_T})"]
        + [loc.same_size_error.relative_error for loc in result.locations]
    )
    rows.append(
        ["  paper same-size"]
        + [loc.row.paper_same_size_error for loc in result.locations]
    )
    title = (
        "Table I: relative error of point-to-point persistent traffic "
        f"estimation, Sioux Falls (runs={result.config.runs}, "
        f"s={result.config.s}, f={result.config.load_factor})"
    )
    return format_table(headers, rows, title=title)
