"""Experiment harness: one module per table/figure in the paper.

Each experiment module exposes ``run_*`` (compute) and ``format_*``
(render a paper-style text artifact).  The registry below is what the
CLI dispatches on::

    python -m repro table1 --runs 10
    python -m repro fig4
    python -m repro all

Every experiment returns plain dataclasses, so notebooks and tests can
consume the numbers directly.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
