"""Text rendering for experiment outputs.

The paper's artifacts are tables and line/scatter plots; in a terminal
we render tables with aligned columns and plots as compact ASCII
charts.  Numbers are the contract — the charts are a convenience for
eyeballing shapes (does the benchmark blow up at small volumes? does
the scatter hug y = x?).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        cells.append([_format_cell(value) for value in row])
    widths = [max(len(r[c]) for r in cells) for c in range(columns)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row_cells in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _format_axis_value(value: float) -> str:
    """Axis label: thousands get commas, small values keep digits."""
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:g}"


def ascii_scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
    draw_diagonal: bool = True,
) -> str:
    """Render (x, y) points as an ASCII scatter with an y=x guide.

    ``*`` marks data; ``.`` marks the y = x line (the paper's equality
    line in Figs. 5–6).  Axes share one scale so the diagonal is
    meaningful.
    """
    if not points:
        raise ValueError("cannot plot an empty point set")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    low = min(min(xs), min(ys), 0.0)
    high = max(max(xs), max(ys))
    if high <= low:
        high = low + 1.0
    span = high - low

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        col = int((x - low) / span * (width - 1))
        row = height - 1 - int((y - low) / span * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    if draw_diagonal:
        for col in range(width):
            value = low + span * col / (width - 1)
            row, _ = to_cell(value, value)
            grid[row][col] = "."
    for x, y in points:
        row, col = to_cell(x, y)
        grid[row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {_format_axis_value(high)}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f"x: {_format_axis_value(low)} .. {_format_axis_value(high)}   "
        "(* data, . equality line)"
    )
    return "\n".join(lines)


def ascii_series(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
) -> str:
    """Render one or more (x, y) line series as an ASCII chart.

    Each series gets its own marker (``*``, ``o``, ``+``, ``x``...).
    Used for the Fig. 4 relative-error curves.
    """
    markers = "*o+x#@"
    if not series:
        raise ValueError("need at least one series")
    all_points = [p for _, pts in series for p in pts]
    if not all_points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(ys)
    if x_high <= x_low:
        x_high = x_low + 1.0
    if y_high <= y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, points), marker in zip(series, markers):
        for x, y in points:
            col = int((x - x_low) / (x_high - x_low) * (width - 1))
            row = height - 1 - int((y - y_low) / (y_high - y_low) * (height - 1))
            grid[max(0, min(height - 1, row))][max(0, min(width - 1, col))] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_high:.4f}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{marker} {label}" for (label, _), marker in zip(series, markers)
    )
    lines.append(
        f"x: {_format_axis_value(x_low)} .. {_format_axis_value(x_high)}   {legend}"
    )
    return "\n".join(lines)
