"""Figs. 5 and 6: actual-vs-estimated scatter plots.

Each figure has two panels at t = 5: point persistent traffic (left)
and point-to-point persistent traffic (right), with each point one
measurement — x the actual persistent volume, y the estimated volume,
clustered around the y = x equality line.  Fig. 5 uses f = 2, Fig. 6
uses f = 3; the visible result is that f = 3 scatters tighter
(bigger bitmaps, less mixing), at the cost of privacy (Table II).

The shared runner lives here; :mod:`repro.experiments.fig6` is a thin
wrapper at f = 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import List, Tuple

import numpy as np

from repro.core.point import PointPersistentEstimator
from repro.core.point_to_point import PointToPointPersistentEstimator
from repro.experiments.common import ExperimentConfig
from repro.experiments.parallel import map_cells
from repro.experiments.report import ascii_scatter, format_table
from repro.traffic.synthetic import (
    SyntheticPointScenario,
    SyntheticPointToPointScenario,
    expected_volume,
)
from repro.traffic.workloads import PointToPointWorkload, PointWorkload

#: Both figures fix t = 5.
T = 5

LOCATION_A = 1
LOCATION_B = 2


@dataclass(frozen=True)
class ScatterResult:
    """One figure's two scatter panels."""

    load_factor: float
    point_pairs: List[Tuple[int, float]]
    p2p_pairs: List[Tuple[int, float]]
    config: ExperimentConfig

    @property
    def point_mean_relative_error(self) -> float:
        """Mean relative error over the point panel's measurements."""
        return _mean_relative_error(self.point_pairs)

    @property
    def p2p_mean_relative_error(self) -> float:
        """Mean relative error over the p2p panel's measurements."""
        return _mean_relative_error(self.p2p_pairs)


def _mean_relative_error(pairs: List[Tuple[int, float]]) -> float:
    return sum(abs(y - x) / x for x, y in pairs) / len(pairs)


def _point_cell(
    item: Tuple[int, int],
    volumes: Tuple[int, ...],
    config: ExperimentConfig,
    points_per_target: int,
) -> List[Tuple[int, float]]:
    """One left-panel target: all its draws through the batch engine."""
    target_index, n_star = item
    workload = PointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    rngs = [
        np.random.default_rng([config.seed, 51, target_index, draw])
        for draw in range(points_per_target)
    ]
    batch = workload.generate_batch(
        n_star=n_star,
        volumes=volumes,
        location=LOCATION_A,
        rngs=rngs,
        expected_volume=expected_volume(),
    )
    return [
        (n_star, estimate.clamped)
        for estimate in PointPersistentEstimator().estimate_batch(batch.batches)
    ]


def _p2p_cell(
    item: Tuple[int, int],
    volumes_a: Tuple[int, ...],
    volumes_b: Tuple[int, ...],
    config: ExperimentConfig,
    points_per_target: int,
) -> List[Tuple[int, float]]:
    """One right-panel target (scalar path — two interleaved streams)."""
    target_index, n_pp = item
    workload = PointToPointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    estimator = PointToPointPersistentEstimator(config.s)
    pairs: List[Tuple[int, float]] = []
    for draw in range(points_per_target):
        rng = np.random.default_rng([config.seed, 52, target_index, draw])
        result = workload.generate(
            n_double_prime=n_pp,
            volumes_a=volumes_a,
            volumes_b=volumes_b,
            location_a=LOCATION_A,
            location_b=LOCATION_B,
            rng=rng,
            expected_volume_a=expected_volume(),
            expected_volume_b=expected_volume(),
        )
        estimate = estimator.estimate(result.records_a, result.records_b)
        pairs.append((n_pp, estimate.clamped))
    return pairs


def run_scatter(
    load_factor: float,
    config: ExperimentConfig = ExperimentConfig(),
    points_per_target: int = 1,
) -> ScatterResult:
    """Generate the scatter measurements for one figure.

    ``points_per_target`` > 1 draws several independent measurements
    per swept target (denser clouds than the paper's single pass).
    """
    config = replace(config, load_factor=load_factor)

    # Left panel: point persistent traffic.
    point_rng = np.random.default_rng([config.seed, 5, 1])
    point_scenario = SyntheticPointScenario.draw(point_rng, periods=T)
    point_cells = map_cells(
        partial(
            _point_cell,
            volumes=point_scenario.volumes,
            config=config,
            points_per_target=points_per_target,
        ),
        list(enumerate(point_scenario.persistent_targets())),
        workers=config.workers,
        experiment="fig5-point",
    )
    point_pairs = [pair for cell in point_cells for pair in cell]

    # Right panel: point-to-point persistent traffic.
    p2p_rng = np.random.default_rng([config.seed, 5, 2])
    p2p_scenario = SyntheticPointToPointScenario.draw(p2p_rng, periods=T)
    p2p_cells = map_cells(
        partial(
            _p2p_cell,
            volumes_a=p2p_scenario.volumes_a,
            volumes_b=p2p_scenario.volumes_b,
            config=config,
            points_per_target=points_per_target,
        ),
        list(enumerate(p2p_scenario.persistent_targets())),
        workers=config.workers,
        experiment="fig5-p2p",
    )
    p2p_pairs = [pair for cell in p2p_cells for pair in cell]

    return ScatterResult(
        load_factor=load_factor,
        point_pairs=point_pairs,
        p2p_pairs=p2p_pairs,
        config=config,
    )


def run_fig5(
    config: ExperimentConfig = ExperimentConfig(),
    points_per_target: int = 1,
) -> ScatterResult:
    """Fig. 5: measurement-accuracy scatter at f = 2."""
    return run_scatter(2.0, config, points_per_target)


def format_scatter(result: ScatterResult, figure_name: str) -> str:
    """Render one figure's panels plus per-panel error summaries."""
    left = ascii_scatter(
        result.point_pairs,
        title=(
            f"{figure_name} left: point persistent traffic "
            f"(t={T}, f={result.load_factor:g})"
        ),
    )
    right = ascii_scatter(
        result.p2p_pairs,
        title=(
            f"{figure_name} right: point-to-point persistent traffic "
            f"(t={T}, f={result.load_factor:g})"
        ),
    )
    summary = format_table(
        ["panel", "measurements", "mean relative error"],
        [
            ["point", len(result.point_pairs), result.point_mean_relative_error],
            ["point-to-point", len(result.p2p_pairs), result.p2p_mean_relative_error],
        ],
    )
    return "\n\n".join([left, right, summary])


def format_fig5(result: ScatterResult) -> str:
    """Render Fig. 5."""
    return format_scatter(result, "Fig. 5")
