"""Extension experiments beyond the paper's evaluation section.

* :func:`run_losscurve` — persistent estimation under V2I detection
  loss: mean estimate vs per-pass detection rate at t = 5 and t = 10,
  with the ``n*·d^t`` and ``n*·d^{⌈t/2⌉}`` brackets (the robustness
  finding of DESIGN.md, as a chartable curve).
* :func:`run_tradeoff` — the accuracy-privacy frontier: for a grid of
  (s, f), the measured point-estimation error against the analytic
  noise-to-information ratio, making Section VI-C's tradeoff a single
  table instead of two separate artifacts.
* :func:`run_faultgrid` — estimator behaviour under injected ingest
  faults: mean estimate and coverage across a (channel loss, outage
  count) grid, estimated over the periods a
  :class:`~repro.faults.plan.FaultPlan` lets survive (the synthetic
  counterpart of the city chaos harness in :mod:`repro.faults.chaos`).

CLI: ``python -m repro losscurve`` / ``python -m repro tradeoff`` /
``python -m repro faultgrid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import summarize_runs
from repro.core.point import PointPersistentEstimator
from repro.experiments.common import ExperimentConfig
from repro.experiments.report import ascii_series, format_table
from repro.privacy.analysis import (
    asymptotic_noise_probability,
    asymptotic_noise_to_information_ratio,
)
from repro.traffic.workloads import PointWorkload

# ----------------------------------------------------------------------
# Loss curve
# ----------------------------------------------------------------------

#: Detection rates swept by the loss curve.
LOSS_RATES: Tuple[float, ...] = (1.0, 0.98, 0.95, 0.9, 0.85, 0.8)

#: Panels (period counts) of the loss curve.
LOSS_T_VALUES: Tuple[int, ...] = (5, 10)

_LOSS_N_STAR = 1000
_LOSS_VOLUME = 8000


@dataclass(frozen=True)
class LossCurvePoint:
    """Mean estimate and bracket at one detection rate."""

    detection_rate: float
    mean_estimate: float
    floor: float
    ceiling: float

    @property
    def within_bracket(self) -> bool:
        """Whether the measured mean landed inside the bracket.

        A 5% tolerance on each side absorbs estimator noise — at
        d = 1.0 the bracket degenerates to the single point ``n*``.
        """
        return 0.95 * self.floor <= self.mean_estimate <= 1.05 * self.ceiling


@dataclass(frozen=True)
class LossCurveResult:
    """One curve per t value."""

    curves: Dict[int, List[LossCurvePoint]]
    n_star: int
    config: ExperimentConfig


def run_losscurve(config: ExperimentConfig = ExperimentConfig()) -> LossCurveResult:
    """Measure the persistent estimate across detection rates."""
    workload = PointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    estimator = PointPersistentEstimator()
    curves: Dict[int, List[LossCurvePoint]] = {}
    for t in LOSS_T_VALUES:
        points = []
        for rate_index, rate in enumerate(LOSS_RATES):
            estimates = []
            for run in range(config.runs):
                rng = np.random.default_rng([config.seed, t, rate_index, run])
                records = workload.generate(
                    n_star=_LOSS_N_STAR,
                    volumes=[_LOSS_VOLUME] * t,
                    location=1,
                    rng=rng,
                    detection_rate=rate,
                ).records
                estimates.append(estimator.estimate(records).clamped)
            half = (t + 1) // 2
            points.append(
                LossCurvePoint(
                    detection_rate=rate,
                    mean_estimate=summarize_runs(estimates).mean,
                    floor=_LOSS_N_STAR * rate**t,
                    ceiling=_LOSS_N_STAR * rate**half,
                )
            )
        curves[t] = points
    return LossCurveResult(curves=curves, n_star=_LOSS_N_STAR, config=config)


def format_losscurve(result: LossCurveResult) -> str:
    """Render the loss curves with their analytic brackets."""
    blocks = []
    for t, points in result.curves.items():
        chart = ascii_series(
            [
                ("measured", [(p.detection_rate, p.mean_estimate) for p in points]),
                ("floor d^t", [(p.detection_rate, p.floor) for p in points]),
                ("ceil d^t/2", [(p.detection_rate, p.ceiling) for p in points]),
            ],
            title=(
                f"Persistent estimate vs V2I detection rate "
                f"(t={t}, n*={result.n_star}, runs={result.config.runs})"
            ),
        )
        table = format_table(
            ["detection rate", "mean estimate", "floor n*d^t", "ceiling", "in bracket"],
            [
                [p.detection_rate, p.mean_estimate, p.floor, p.ceiling,
                 "yes" if p.within_bracket else "NO"]
                for p in points
            ],
        )
        blocks.append(chart + "\n\n" + table)
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Accuracy-privacy frontier
# ----------------------------------------------------------------------

#: The (s, f) grid of the frontier sweep.
FRONTIER_SETTINGS: Tuple[Tuple[int, float], ...] = (
    (2, 1.0), (2, 2.0), (3, 1.0), (3, 2.0), (3, 3.0),
    (4, 2.0), (5, 2.0), (5, 4.0),
)

_FRONTIER_N_STAR = 400
_FRONTIER_VOLUME = 6000
_FRONTIER_T = 5


@dataclass(frozen=True)
class FrontierPoint:
    """One (s, f) setting's accuracy and privacy scores."""

    s: int
    load_factor: float
    mean_relative_error: float
    privacy_ratio: float
    noise_probability: float


@dataclass(frozen=True)
class FrontierResult:
    """The measured accuracy-privacy frontier."""

    points: List[FrontierPoint]
    config: ExperimentConfig


def run_tradeoff(config: ExperimentConfig = ExperimentConfig()) -> FrontierResult:
    """Measure error and privacy ratio over the (s, f) grid."""
    estimator = PointPersistentEstimator()
    points = []
    for setting_index, (s, f) in enumerate(FRONTIER_SETTINGS):
        workload = PointWorkload(s=s, load_factor=f, key_seed=config.seed)
        errors = []
        for run in range(config.runs):
            rng = np.random.default_rng([config.seed, setting_index, run])
            records = workload.generate(
                n_star=_FRONTIER_N_STAR,
                volumes=[_FRONTIER_VOLUME] * _FRONTIER_T,
                location=1,
                rng=rng,
                expected_volume=_FRONTIER_VOLUME,
            ).records
            errors.append(
                estimator.estimate(records).relative_error(_FRONTIER_N_STAR)
            )
        points.append(
            FrontierPoint(
                s=s,
                load_factor=f,
                mean_relative_error=summarize_runs(errors).mean,
                privacy_ratio=asymptotic_noise_to_information_ratio(s, f),
                noise_probability=asymptotic_noise_probability(f),
            )
        )
    return FrontierResult(points=points, config=config)


def format_tradeoff(result: FrontierResult) -> str:
    """Render the frontier, best privacy first."""
    ordered = sorted(
        result.points, key=lambda p: p.privacy_ratio, reverse=True
    )
    table = format_table(
        ["s", "f", "mean rel error", "privacy ratio", "noise p"],
        [
            [p.s, p.load_factor, p.mean_relative_error, p.privacy_ratio,
             p.noise_probability]
            for p in ordered
        ],
        title=(
            "Accuracy-privacy frontier "
            f"(point persistent, n*={_FRONTIER_N_STAR}, t={_FRONTIER_T}, "
            f"runs={result.config.runs})"
        ),
    )
    note = (
        "\nHigher privacy ratio = harder tracking; lower error = better "
        "measurement.\nThe paper picks s=3, f=2 (ratio ~1.95) as the "
        "compromise."
    )
    return table + note


# ----------------------------------------------------------------------
# t-sweep: how many periods buy how much accuracy
# ----------------------------------------------------------------------

#: Period counts swept by the t-sweep experiment.
T_SWEEP_VALUES: Tuple[int, ...] = (2, 3, 4, 5, 7, 10, 12)

_TSWEEP_N_STAR = 300
_TSWEEP_VOLUME = 8000


@dataclass(frozen=True)
class TSweepPoint:
    """Errors of both estimators at one period count."""

    t: int
    proposed_error: float
    benchmark_error: float


@dataclass(frozen=True)
class TSweepResult:
    """Accuracy vs number of joined periods."""

    points: List[TSweepPoint]
    n_star: int
    config: ExperimentConfig


def run_tsweep(config: ExperimentConfig = ExperimentConfig()) -> TSweepResult:
    """Measure error vs t for the proposed estimator and the benchmark.

    The paper samples t at {3, 5, 7, 10} (Table I) and {5, 10}
    (Fig. 4); this sweep fills in the curve and shows where the
    AND-join's noise filtering saturates.
    """
    from repro.core.baselines import DirectAndBenchmark

    workload = PointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    proposed = PointPersistentEstimator()
    benchmark = DirectAndBenchmark()
    points = []
    for t_index, t in enumerate(T_SWEEP_VALUES):
        proposed_errors, benchmark_errors = [], []
        for run in range(config.runs):
            rng = np.random.default_rng([config.seed, 0x75, t_index, run])
            records = workload.generate(
                n_star=_TSWEEP_N_STAR,
                volumes=[_TSWEEP_VOLUME] * t,
                location=1,
                rng=rng,
            ).records
            proposed_errors.append(
                proposed.estimate(records).relative_error(_TSWEEP_N_STAR)
            )
            benchmark_errors.append(
                benchmark.estimate(records).relative_error(_TSWEEP_N_STAR)
            )
        points.append(
            TSweepPoint(
                t=t,
                proposed_error=summarize_runs(proposed_errors).mean,
                benchmark_error=summarize_runs(benchmark_errors).mean,
            )
        )
    return TSweepResult(points=points, n_star=_TSWEEP_N_STAR, config=config)


# ----------------------------------------------------------------------
# Fault grid: estimation over what survives a fault plan
# ----------------------------------------------------------------------

#: Per-encounter channel-loss rates swept by the fault grid.
FAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)

#: Outage lengths (blanked periods) swept by the fault grid.
FAULT_OUTAGE_COUNTS: Tuple[int, ...] = (0, 1, 2)

_FAULTGRID_N_STAR = 600
_FAULTGRID_VOLUME = 6000
_FAULTGRID_T = 8
_FAULTGRID_LOCATION = 1


@dataclass(frozen=True)
class FaultGridPoint:
    """One (channel loss, outage) cell's degraded-path measurement."""

    channel_loss: float
    outage_periods: int
    surviving_t: int
    coverage: float
    mean_estimate: float
    floor: float
    ceiling: float

    @property
    def within_bracket(self) -> bool:
        """Whether the mean landed inside the slackened loss bracket."""
        return 0.95 * self.floor <= self.mean_estimate <= 1.05 * self.ceiling


@dataclass(frozen=True)
class FaultGridResult:
    """Degraded estimation across the fault grid."""

    points: List[FaultGridPoint]
    n_star: int
    config: ExperimentConfig


def run_faultgrid(config: ExperimentConfig = ExperimentConfig()) -> FaultGridResult:
    """Measure the persistent estimate over fault-surviving periods.

    Channel loss folds into the per-pass detection rate; RSU outages
    blank whole periods, so the estimator joins only the ``t'``
    surviving records — exactly the degraded path the central server
    takes under a :class:`~repro.server.degradation.CoveragePolicy`.
    The bracket is the losscurve's ``[n*·d^t', n*·d^⌈t'/2⌉]`` with
    ``d`` the post-loss detection probability and ``t'`` the surviving
    period count.
    """
    from repro.faults.plan import FaultPlan, OutageWindow
    from repro.traffic.synthetic import SyntheticPointScenario

    workload = PointWorkload(
        s=config.s, load_factor=config.load_factor, key_seed=config.seed
    )
    estimator = PointPersistentEstimator()
    scenario = SyntheticPointScenario(
        volumes=(_FAULTGRID_VOLUME,) * _FAULTGRID_T
    )
    points = []
    for cell, (loss, outage_periods) in enumerate(
        (l, o) for l in FAULT_LOSS_RATES for o in FAULT_OUTAGE_COUNTS
    ):
        outages: Tuple[OutageWindow, ...] = ()
        if outage_periods > 0:
            # Blank a run of periods from the middle of the window.
            first = _FAULTGRID_T // 2
            outages = (
                OutageWindow(
                    first_period=first,
                    last_period=first + outage_periods - 1,
                    location=_FAULTGRID_LOCATION,
                ),
            )
        plan = FaultPlan(seed=config.seed, channel_loss=loss, outages=outages)
        surviving = scenario.surviving_periods(plan, _FAULTGRID_LOCATION)
        estimates = []
        for run in range(config.runs):
            rng = np.random.default_rng([config.seed, 0xFA, cell, run])
            records = workload.generate(
                n_star=_FAULTGRID_N_STAR,
                volumes=list(scenario.volumes),
                location=_FAULTGRID_LOCATION,
                rng=rng,
                detection_rate=1.0 - loss,
            ).records
            estimates.append(
                estimator.estimate(
                    [records[p] for p in surviving]
                ).clamped
            )
        t_prime = len(surviving)
        d = 1.0 - loss
        points.append(
            FaultGridPoint(
                channel_loss=loss,
                outage_periods=outage_periods,
                surviving_t=t_prime,
                coverage=t_prime / _FAULTGRID_T,
                mean_estimate=summarize_runs(estimates).mean,
                floor=_FAULTGRID_N_STAR * d**t_prime,
                ceiling=_FAULTGRID_N_STAR * d ** ((t_prime + 1) // 2),
            )
        )
    return FaultGridResult(
        points=points, n_star=_FAULTGRID_N_STAR, config=config
    )


def format_faultgrid(result: FaultGridResult) -> str:
    """Render the fault grid, heaviest faults last."""
    table = format_table(
        ["loss", "outage", "t'", "coverage", "mean estimate", "floor",
         "ceiling", "in bracket"],
        [
            [p.channel_loss, p.outage_periods, p.surviving_t, p.coverage,
             p.mean_estimate, p.floor, p.ceiling,
             "yes" if p.within_bracket else "NO"]
            for p in result.points
        ],
        title=(
            "Persistent estimate over fault-surviving periods "
            f"(n*={result.n_star}, t={_FAULTGRID_T}, "
            f"runs={result.config.runs})"
        ),
    )
    note = (
        "\nOutages shrink t' (fewer joined periods, looser bracket); "
        "channel loss\nlowers the effective detection rate d.  The "
        "degraded path stays inside\nthe analytic bracket everywhere "
        "the plan leaves >= 2 periods standing."
    )
    return table + note


def format_tsweep(result: TSweepResult) -> str:
    """Render the t-sweep as a chart plus the numbers."""
    chart = ascii_series(
        [
            ("proposed", [(p.t, p.proposed_error) for p in result.points]),
            ("benchmark", [(p.t, p.benchmark_error) for p in result.points]),
        ],
        title=(
            f"Relative error vs measurement periods t "
            f"(n*={result.n_star}, runs={result.config.runs})"
        ),
    )
    table = format_table(
        ["t", "proposed", "benchmark"],
        [[p.t, p.proposed_error, p.benchmark_error] for p in result.points],
    )
    note = (
        "\nThe benchmark rides the AND-join's noise filtering: each "
        "extra period\nmultiplies the surviving-collision probability "
        "by the one-fraction, so by\nt≈7 the two estimators coincide "
        "and extra periods only tighten variance."
    )
    return chart + "\n\n" + table + note
