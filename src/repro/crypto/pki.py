"""PKI substrate: trusted third party, certificates, authentication.

Section II-B: "Communications begin with an RSU broadcast beacon, each
carrying its public-key certificate, which was obtained from a trusted
third party and was pre-installed with the RSU.  When a vehicle
receives a beacon, it uses its pre-installed public key of the trusted
third party to verify the certificate. ... Rogue RSUs ... will fail the
authentication with the vehicles, which will reject further
communications."

The paper uses PKI as an off-the-shelf component; here it is simulated
with keyed HMACs, which preserves exactly the behaviour the protocol
depends on: a certificate issued by the genuine authority verifies, a
forged one does not, and a challenge-response proves the RSU holds the
private key matching its certificate.  (Real asymmetric crypto is out
of scope for the measurement questions the paper studies; the message
flow is identical.)
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AuthenticationError


def _hmac64(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 truncated to 8 bytes (compact beacon payloads)."""
    return hmac.new(key, message, hashlib.sha256).digest()[:8]


@dataclass(frozen=True)
class Certificate:
    """A certificate binding an RSU identity to its public key.

    Attributes
    ----------
    rsu_id:
        The identity of the certified RSU (its location ID).
    public_key:
        The RSU's public key material (simulated as bytes).
    signature:
        The trusted third party's signature over (rsu_id, public_key).
    """

    rsu_id: int
    public_key: bytes
    signature: bytes


@dataclass(frozen=True)
class RsuCredentials:
    """What gets pre-installed in a legitimate RSU.

    The certificate is broadcast in every beacon; the private key never
    leaves the RSU and is used to answer authentication challenges.
    """

    certificate: Certificate
    private_key: bytes


class CertificateAuthority:
    """The trusted third party of Section II-B.

    Issues RSU credentials and publishes the verification key that is
    pre-installed in every vehicle.  A rogue RSU, lacking access to the
    authority, cannot mint a certificate that verifies.
    """

    def __init__(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        self._root_key = rng.bytes(32)
        # In a real PKI the verification key differs from the signing
        # key; with HMAC simulation they coincide.  Vehicles only ever
        # receive this through `trust_anchor`, mirroring pre-installed
        # public keys.
        self._rng = rng

    @property
    def trust_anchor(self) -> bytes:
        """Verification key pre-installed in vehicles."""
        return self._root_key

    def issue(self, rsu_id: int) -> RsuCredentials:
        """Issue credentials for a legitimate RSU."""
        private_key = self._rng.bytes(32)
        public_key = hashlib.sha256(private_key).digest()
        payload = int(rsu_id).to_bytes(8, "little", signed=False) + public_key
        signature = _hmac64(self._root_key, payload)
        certificate = Certificate(
            rsu_id=int(rsu_id), public_key=public_key, signature=signature
        )
        return RsuCredentials(certificate=certificate, private_key=private_key)


def verify_certificate(certificate: Certificate, trust_anchor: bytes) -> bool:
    """Verify a certificate against the trusted third party's key.

    This is the check every vehicle performs on each received beacon
    before responding; a failed check means the vehicle "will keep
    silent" (Section II-B).
    """
    payload = (
        int(certificate.rsu_id).to_bytes(8, "little", signed=False)
        + certificate.public_key
    )
    expected = _hmac64(trust_anchor, payload)
    return hmac.compare_digest(expected, certificate.signature)


def answer_challenge(private_key: bytes, challenge: bytes) -> bytes:
    """RSU side of the challenge-response authentication."""
    return _hmac64(hashlib.sha256(private_key).digest() + private_key, challenge)


def check_challenge_answer(
    certificate: Certificate, challenge: bytes, answer: bytes, private_key: bytes
) -> bool:
    """Vehicle-side verification that the RSU holds the certified key.

    With HMAC simulation the verifier recomputes with material derived
    from the same private key; the test suite exercises both honest and
    rogue paths.  (A production system would use a signature here.)
    """
    expected = answer_challenge(private_key, challenge)
    if not hmac.compare_digest(expected, answer):
        return False
    return hashlib.sha256(private_key).digest() == certificate.public_key


def authenticate_or_raise(certificate: Certificate, trust_anchor: bytes) -> None:
    """Raise :class:`AuthenticationError` unless the certificate verifies."""
    if not verify_certificate(certificate, trust_anchor):
        raise AuthenticationError(
            f"certificate for RSU {certificate.rsu_id} failed verification; "
            "treating the RSU as rogue and staying silent"
        )
