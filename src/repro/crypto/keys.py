"""Vehicle key material: private keys ``K_v`` and constants ``C``.

Per Section II-D, every vehicle holds a private key ``K_v`` "known only
by the vehicle" and an array ``C`` of ``s`` randomly selected constants
also known only to the vehicle.  Neither is ever transmitted; they feed
the hash that picks the bit index.

:class:`KeyGenerator` produces this material deterministically from a
master seed so that simulations are reproducible, while remaining
unpredictable to any party that does not hold the seed — the same
security argument as any PRG-based key derivation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.crypto.hashing import Hasher, SplitMix64Hasher, to_u64, xor_fold
from repro.exceptions import ConfigurationError

#: Domain-separation tags so keys and constants come from
#: independent hash streams of the same generator.
_DOMAIN_PRIVATE_KEY = 0x6B65795F70726976  # ascii "key_priv"
_DOMAIN_CONSTANT = 0x636F6E7374616E74  # ascii "constant"


def generate_private_key(rng: np.random.Generator) -> int:
    """Draw a fresh uniform 64-bit private key ``K_v``."""
    return int(rng.integers(0, 2**64, dtype=np.uint64))


def generate_constants(rng: np.random.Generator, s: int) -> List[int]:
    """Draw the vehicle's array ``C`` of ``s`` random constants."""
    if s < 1:
        raise ConfigurationError(f"constant array size s must be >= 1, got {s}")
    return [int(x) for x in rng.integers(0, 2**64, size=s, dtype=np.uint64)]


class KeyGenerator:
    """Deterministic derivation of per-vehicle key material.

    Given a secret master seed, derives ``K_v`` and ``C`` for any
    vehicle ID on demand.  Two generators with the same seed agree on
    every vehicle's material (reproducible simulations); without the
    seed the material is unpredictable, matching the paper's
    requirement that ``K_v`` and ``C`` are known only to the vehicle.

    The derivation is also exposed in vectorized form so the experiment
    harness can materialize key material for whole populations at once.
    """

    def __init__(self, master_seed: int, s: int):
        if s < 1:
            raise ConfigurationError(f"constant array size s must be >= 1, got {s}")
        self._seed = to_u64(master_seed)
        self._s = int(s)
        self._hasher: Hasher = SplitMix64Hasher(self._seed)

    @property
    def s(self) -> int:
        """Number of constants (= representative bits) per vehicle."""
        return self._s

    @property
    def master_seed(self) -> int:
        """The secret master seed."""
        return self._seed

    @property
    def hasher(self) -> Hasher:
        """The derivation hasher (simulation tooling; secret on-vehicle)."""
        return self._hasher

    def chosen_tags_inplace(self, choices: np.ndarray) -> np.ndarray:
        """Overwrite uint64 choice indices with their domain tags.

        ``tag(i) = DOMAIN_CONSTANT ^ ((i+1)·0x10001)`` — the same
        domain separation :meth:`constants` and
        :meth:`chosen_constants` hash under.  Part of the batch
        encoding hot path; the buffer is caller-owned scratch.
        """
        with np.errstate(over="ignore"):
            choices += np.uint64(1)
            choices *= np.uint64(0x10001)
            choices ^= np.uint64(_DOMAIN_CONSTANT)
        return choices

    def private_keys_inplace(self, ids_scratch: np.ndarray) -> np.ndarray:
        """:meth:`private_keys` overwriting a caller-owned id buffer."""
        ids_scratch ^= np.uint64(_DOMAIN_PRIVATE_KEY)
        return self._hasher.hash_array_inplace(ids_scratch)

    def private_key(self, vehicle_id: int) -> int:
        """Derive ``K_v`` for one vehicle."""
        return self._hasher.hash_int(xor_fold(_DOMAIN_PRIVATE_KEY, vehicle_id))

    def constants(self, vehicle_id: int) -> List[int]:
        """Derive the constants array ``C`` for one vehicle."""
        return [
            self._hasher.hash_int(
                xor_fold(_DOMAIN_CONSTANT, vehicle_id, (index + 1) * 0x10001)
            )
            for index in range(self._s)
        ]

    def private_keys(self, vehicle_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`private_key` over an id array."""
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        return self._hasher.hash_array(ids ^ np.uint64(_DOMAIN_PRIVATE_KEY))

    def constants_matrix(self, vehicle_ids: np.ndarray) -> np.ndarray:
        """Vectorized constants: an ``(n, s)`` uint64 matrix."""
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        columns = []
        for index in range(self._s):
            tag = np.uint64(_DOMAIN_CONSTANT) ^ np.uint64((index + 1) * 0x10001)
            columns.append(self._hasher.hash_array(ids ^ tag))
        return np.stack(columns, axis=1)

    def chosen_constants(
        self, vehicle_ids: np.ndarray, choices: np.ndarray
    ) -> np.ndarray:
        """Derive only each vehicle's *chosen* constant ``C[i]``.

        Equivalent to ``constants_matrix(ids)[range(n), choices]`` but
        a single hash pass — the encoding hot path never needs the
        other ``s - 1`` constants.
        """
        ids = np.asarray(vehicle_ids, dtype=np.uint64)
        picks = np.asarray(choices, dtype=np.uint64)
        if picks.shape != ids.shape:
            raise ConfigurationError(
                f"choices shape {picks.shape} does not match ids {ids.shape}"
            )
        if picks.size and int(picks.max()) >= self._s:
            raise ConfigurationError(
                f"choice index out of range for s={self._s}"
            )
        with np.errstate(over="ignore"):
            tags = np.uint64(_DOMAIN_CONSTANT) ^ (
                (picks + np.uint64(1)) * np.uint64(0x10001)
            )
        return self._hasher.hash_array(ids ^ tags)
