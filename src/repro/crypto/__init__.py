"""Cryptographic substrate for the V2I protocol.

The paper's protocol (Section II-B/II-D) needs three cryptographic
ingredients, all built here:

* a hash function ``H`` "that provides good randomness"
  (:mod:`repro.crypto.hashing`) — provided in a byte-faithful SHA-256
  flavour and a numpy-vectorized splitmix64 flavour with identical
  distributional behaviour;
* a PKI with a trusted third party, RSU certificates, and
  challenge-response authentication (:mod:`repro.crypto.pki`);
* SpoofMAC-style one-time MAC addresses (:mod:`repro.crypto.mac`).
"""

from repro.crypto.hashing import (
    Hasher,
    Sha256Hasher,
    SplitMix64Hasher,
    default_hasher,
)
from repro.crypto.keys import KeyGenerator, generate_constants, generate_private_key
from repro.crypto.mac import AnonymousMacGenerator, MacAddress
from repro.crypto.pki import (
    Certificate,
    CertificateAuthority,
    RsuCredentials,
    verify_certificate,
)

__all__ = [
    "AnonymousMacGenerator",
    "Certificate",
    "CertificateAuthority",
    "Hasher",
    "KeyGenerator",
    "MacAddress",
    "RsuCredentials",
    "Sha256Hasher",
    "SplitMix64Hasher",
    "default_hasher",
    "generate_constants",
    "generate_private_key",
    "verify_certificate",
]
