"""The paper's hash function ``H`` in two interchangeable flavours.

Section II-D requires "a hash function H that provides good
randomness"; the estimators only need the *distribution* of hash
outputs, not any particular function.  Two implementations of the
:class:`Hasher` interface are provided:

* :class:`Sha256Hasher` — hashes the 8-byte little-endian encoding of
  the input through SHA-256 and keeps the first 64 bits.  This is the
  byte-faithful reference used by the protocol layer and the
  discrete-event simulation.
* :class:`SplitMix64Hasher` — the splitmix64 finalizer, fully
  vectorized over numpy ``uint64`` arrays.  It passes standard
  avalanche criteria and lets the experiment harness encode hundreds of
  thousands of vehicle passages in a handful of array operations.

Property-based tests (``tests/test_crypto_hashing.py``) assert both
produce uniform bit indices and statistically indistinguishable
estimator behaviour.

All inputs and outputs are unsigned 64-bit integers; the paper's
``⊕`` (XOR) combinations of vehicle IDs, private keys, constants and
location IDs happen in the same 64-bit domain (:func:`xor_fold`).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
import numpy as np

_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: Odd constants from the reference splitmix64 implementation.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MUL1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MUL2 = 0x94D049BB133111EB


def to_u64(value: int) -> int:
    """Reduce a Python integer into the unsigned 64-bit domain."""
    return int(value) & _U64_MASK


def xor_fold(*values: int) -> int:
    """XOR-combine entities exactly as the paper's ``⊕`` does.

    All operands are first reduced to unsigned 64-bit integers, so
    vehicle IDs, private keys, constants and location IDs share one
    domain regardless of how callers produced them.
    """
    result = 0
    for value in values:
        result ^= to_u64(value)
    return result


class Hasher(ABC):
    """Interface for the paper's hash function ``H``.

    Implementations must be deterministic, seedable (different
    deployments use independent hash instances), and uniform over the
    64-bit output space.
    """

    @abstractmethod
    def hash_int(self, value: int) -> int:
        """Hash one value to a uniform unsigned 64-bit integer."""

    @abstractmethod
    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hash_int` over a ``uint64`` array."""

    def hash_array_inplace(self, values: np.ndarray) -> np.ndarray:
        """Hash a caller-owned contiguous ``uint64`` array in place.

        Identical output to :meth:`hash_array` but licensed to clobber
        ``values`` (and to reuse it as the result buffer), saving the
        defensive copy on the batch-encoding hot path.  The default
        implementation falls back to :meth:`hash_array`.
        """
        values[...] = self.hash_array(values)
        return values

    def hash_mod(self, value: int, modulus: int) -> int:
        """Hash and reduce — the paper's ``H(x) mod m``."""
        return self.hash_int(value) % int(modulus)


class Sha256Hasher(Hasher):
    """Byte-faithful reference hasher based on SHA-256.

    The 64-bit input is serialized little-endian together with an
    8-byte seed, digested with SHA-256, and the first 8 digest bytes
    are interpreted as the output.  Slow but cryptographically honest;
    used where protocol fidelity matters more than speed.
    """

    def __init__(self, seed: int = 0):
        self._seed_bytes = to_u64(seed).to_bytes(8, "little")
        self._seed = to_u64(seed)

    @property
    def seed(self) -> int:
        """The seed distinguishing this hash instance."""
        return self._seed

    def hash_int(self, value: int) -> int:
        payload = self._seed_bytes + to_u64(value).to_bytes(8, "little")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little")

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.uint64).ravel()
        out = np.empty(arr.shape[0], dtype=np.uint64)
        for index, value in enumerate(arr):
            out[index] = self.hash_int(int(value))
        return out


class SplitMix64Hasher(Hasher):
    """Vectorized hasher using the splitmix64 finalizer.

    splitmix64 is a bijective mixing function with full avalanche; with
    a seeded additive offset it behaves as an independent uniform hash
    family member, which is all the estimators' analysis requires.
    """

    def __init__(self, seed: int = 0):
        self._seed = to_u64(seed)
        # Mix the seed once so consecutive seeds give unrelated streams.
        self._offset = self._mix_scalar(to_u64(seed * _SPLITMIX_GAMMA + 1))

    @property
    def seed(self) -> int:
        """The seed distinguishing this hash instance."""
        return self._seed

    @staticmethod
    def _mix_scalar(z: int) -> int:
        z = to_u64(z + _SPLITMIX_GAMMA)
        z = to_u64((z ^ (z >> 30)) * _SPLITMIX_MUL1)
        z = to_u64((z ^ (z >> 27)) * _SPLITMIX_MUL2)
        return z ^ (z >> 31)

    def hash_int(self, value: int) -> int:
        return self._mix_scalar(to_u64(value) ^ self._offset)

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        z = np.asarray(values, dtype=np.uint64).ravel().copy()
        z ^= np.uint64(self._offset)
        with np.errstate(over="ignore"):
            z += np.uint64(_SPLITMIX_GAMMA)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(_SPLITMIX_MUL1)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(_SPLITMIX_MUL2)
        return z ^ (z >> np.uint64(31))

    def hash_array_inplace(self, values: np.ndarray) -> np.ndarray:
        # Same arithmetic as hash_array with every step writing back
        # into the caller's buffer (one scratch array for the shifts).
        z = values
        z ^= np.uint64(self._offset)
        with np.errstate(over="ignore"):
            z += np.uint64(_SPLITMIX_GAMMA)
            scratch = z >> np.uint64(30)
            z ^= scratch
            z *= np.uint64(_SPLITMIX_MUL1)
            np.right_shift(z, np.uint64(27), out=scratch)
            z ^= scratch
            z *= np.uint64(_SPLITMIX_MUL2)
            np.right_shift(z, np.uint64(31), out=scratch)
            z ^= scratch
        return z


#: Flavour names accepted by :func:`default_hasher`.
HASHER_FLAVOURS = ("splitmix64", "sha256")


def default_hasher(seed: int = 0, flavour: str = "splitmix64") -> Hasher:
    """Construct a hasher by flavour name.

    ``splitmix64`` (default) is the fast vectorized implementation used
    by the experiment harness; ``sha256`` is the byte-faithful
    reference used in protocol tests.
    """
    if flavour == "splitmix64":
        return SplitMix64Hasher(seed)
    if flavour == "sha256":
        return Sha256Hasher(seed)
    raise ValueError(
        f"unknown hasher flavour {flavour!r}; expected one of {HASHER_FLAVOURS}"
    )
