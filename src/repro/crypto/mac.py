"""SpoofMAC-style anonymous MAC addresses (Section II-B).

"Before a vehicle communicates with an RSU, it picks a temporary MAC
address randomly from a large space for one-time use, which prevents
the MAC address from serving as an identifier of the vehicle."

:class:`AnonymousMacGenerator` draws uniform 48-bit addresses with the
locally-administered and unicast bits set the way real randomized MACs
set them.  The generator keeps a short history so tests can verify the
one-time-use property (no address reuse within a session, overwhelming
unlikelihood of collision across vehicles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**48:
            raise ValueError(f"MAC address must fit in 48 bits, got {self.value:#x}")

    @property
    def is_locally_administered(self) -> bool:
        """Second-least-significant bit of the first octet."""
        return bool((self.value >> 41) & 1)

    @property
    def is_unicast(self) -> bool:
        """Least-significant bit of the first octet is zero."""
        return not (self.value >> 40) & 1

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)


class AnonymousMacGenerator:
    """Draws one-time random MAC addresses for each V2I exchange."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._issued = 0

    @property
    def issued(self) -> int:
        """How many one-time addresses have been issued."""
        return self._issued

    def next_address(self) -> MacAddress:
        """Draw a fresh locally-administered unicast address."""
        raw = int(self._rng.integers(0, 2**48, dtype=np.uint64))
        # Force locally-administered (bit 41 set) and unicast (bit 40
        # clear), the convention real MAC randomization follows.
        raw |= 1 << 41
        raw &= ~(1 << 40)
        self._issued += 1
        return MacAddress(raw)
