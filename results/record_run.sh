#!/bin/bash
# Recorded reproduction pass backing EXPERIMENTS.md (~3 minutes).
set -e
cd "$(dirname "$0")/.."
python -m repro table2 --empirical > results/table2.txt 2>&1
python -m repro table1 --runs 30 > results/table1.txt 2>&1
python -m repro fig4 --runs 30 > results/fig4.txt 2>&1
python -m repro fig5 --points-per-target 3 > results/fig5.txt 2>&1
python -m repro fig6 --points-per-target 3 > results/fig6.txt 2>&1
python -m repro losscurve --runs 10 > results/losscurve.txt 2>&1
python -m repro tradeoff --runs 20 > results/tradeoff.txt 2>&1
python -m repro tsweep --runs 20 > results/tsweep.txt 2>&1
echo DONE
