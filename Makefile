# Development targets. The environment is assumed offline-capable:
# `make install` uses setup.py develop because pip's editable path
# needs the `wheel` package.

.PHONY: install test bench repro repro-full clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick regeneration of every paper artifact (minutes).
repro:
	python -m repro all

# Paper-grade averaging (1000 runs per cell; hours).
repro-full:
	python -m repro all --runs 1000

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
