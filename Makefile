# Development targets. The environment is assumed offline-capable:
# `make install` uses setup.py develop because pip's editable path
# needs the `wheel` package.

.PHONY: install test bench report repro repro-full clean

install:
	python setup.py develop

# Same invocation as the tier-1 verify in ROADMAP.md — works from a
# clean checkout, no `make install` needed.
test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# End-to-end simulation with the observability layer on: prints the
# run report and leaves a Prometheus exposition next to it.
report:
	PYTHONPATH=src python -m repro simulate --periods 3 \
		--metrics-out /tmp/repro-metrics.prom --metrics-format prom

# Quick regeneration of every paper artifact (minutes).
repro:
	python -m repro all

# Paper-grade averaging (1000 runs per cell; hours).
repro-full:
	python -m repro all --runs 1000

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
