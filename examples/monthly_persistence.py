"""A month of measurement: the paper's three period selections, live.

Section II-A motivates persistent traffic with three selections: "the
workdays of a week", "the Saturdays of several weeks", and "all days
in a month".  This example builds a 28-day measurement campaign at one
intersection with three distinct driver populations —

* weekday commuters (drive Monday-Friday only),
* Saturday market regulars (drive Saturdays only),
* die-hard daily drivers (drive every single day),

plus weekday-modulated transient traffic — then runs all three queries
against the archived records and shows each selection isolates exactly
the population it should.

Run:  python examples/monthly_persistence.py   (~15 seconds)
"""

import datetime
import tempfile

import numpy as np

from repro import (
    Bitmap,
    KeyGenerator,
    PointPersistentEstimator,
    VehicleEncoder,
    VehiclePopulation,
    bitmap_size_for_volume,
)
from repro.rsu.record import TrafficRecord
from repro.server.persistence import RecordArchive
from repro.traffic.patterns import WeeklyPattern, volumes_for_schedule
from repro.traffic.periods import MeasurementSchedule

LOCATION = 7
BASE_VOLUME = 8000
COMMUTERS = 600          # weekdays only
SATURDAY_REGULARS = 250  # Saturdays only
DAILY_DRIVERS = 150      # every day


def main() -> None:
    schedule = MeasurementSchedule(datetime.date(2017, 6, 5), 28)
    rng = np.random.default_rng(4)
    keygen = KeyGenerator(master_seed=17, s=3)
    encoder = VehicleEncoder()

    commuters = VehiclePopulation.random(COMMUTERS, keygen, rng)
    saturday_regulars = VehiclePopulation.random(SATURDAY_REGULARS, keygen, rng)
    daily_drivers = VehiclePopulation.random(DAILY_DRIVERS, keygen, rng)

    volumes = volumes_for_schedule(
        schedule, BASE_VOLUME, WeeklyPattern(), rng=rng, noise_sigma=0.05
    )
    size = bitmap_size_for_volume(BASE_VOLUME, 2)

    with tempfile.TemporaryDirectory() as tmp:
        archive = RecordArchive(tmp)
        for period in range(schedule.period_count):
            weekday = schedule.date_of(period).weekday()
            bitmap = Bitmap(size)
            regulars = 0
            daily_drivers.encode_into(bitmap, LOCATION, encoder)
            regulars += DAILY_DRIVERS
            if weekday < 5:
                commuters.encode_into(bitmap, LOCATION, encoder)
                regulars += COMMUTERS
            if weekday == 5:
                saturday_regulars.encode_into(bitmap, LOCATION, encoder)
                regulars += SATURDAY_REGULARS
            transients = VehiclePopulation.random(
                max(volumes[period] - regulars, 0), keygen, rng
            )
            transients.encode_into(bitmap, LOCATION, encoder)
            archive.save(
                TrafficRecord(location=LOCATION, period=period, bitmap=bitmap)
            )
        print(
            f"Archived {len(archive)} daily records "
            f"({archive.verify()} verified) for June 2017.\n"
        )
        store = archive.load_store()

        estimator = PointPersistentEstimator()
        selections = [
            (schedule.weekdays_of_week(0), COMMUTERS + DAILY_DRIVERS,
             "workdays of week 1 (commuters + daily drivers)"),
            (schedule.weekday_across_weeks(weekday=5, weeks=4),
             SATURDAY_REGULARS + DAILY_DRIVERS,
             "Saturdays of 4 weeks (regulars + daily drivers)"),
            (schedule.all_periods(), DAILY_DRIVERS,
             "all 28 days            (daily drivers only)"),
        ]

        print(f"{'selection':<52} {'actual':>7} {'estimate':>9} {'error':>7}")
        for selection, actual, label in selections:
            records = store.records_for(LOCATION, selection.periods)
            estimate = estimator.estimate(records)
            error = estimate.relative_error(actual)
            print(f"{label:<52} {actual:>7} {estimate.estimate:>9.1f} {error:>6.2%}")

    print(
        "\nEach selection isolates its population: commuters vanish "
        "from the\nSaturday query, Saturday regulars from the weekday "
        "query, and only\nthe daily drivers survive the whole month."
    )


if __name__ == "__main__":
    main()
