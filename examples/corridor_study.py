"""Corridor study: persistent traffic along a whole arterial.

An extension beyond the paper's two-location estimator: how many
vehicles traverse *all four* intersections of an arterial corridor on
*every workday* of a week?  This uses

* :class:`~repro.core.path.PathPersistentEstimator` — the k-location
  generalization of the paper's Section IV derivation (see DESIGN.md,
  "Findings and extensions");
* :class:`~repro.traffic.periods.MeasurementSchedule` — the paper's
  "Monday through Friday of a certain week" period selection;
* the analytical confidence intervals of
  :mod:`repro.analysis.theory` for the two-location legs.

Run:  python examples/corridor_study.py   (~15 seconds)
"""

import datetime

import numpy as np

from repro.analysis.theory import point_to_point_confidence_interval
from repro.core.path import PathPersistentEstimator
from repro.core.point_to_point import PointToPointPersistentEstimator
from repro.traffic.periods import MeasurementSchedule
from repro.traffic.workloads import PathWorkload

#: The corridor: four consecutive intersections along an arterial.
CORRIDOR = (16, 10, 17, 19)

#: Daily volumes per intersection (vehicles/day; the middle of the
#: corridor carries the most traffic).
DAILY_VOLUMES = {16: 42000, 10: 65000, 17: 38000, 19: 24000}

#: Vehicles that drive the whole corridor every workday.
TRUE_CORRIDOR_COMMUTERS = 2500


def main() -> None:
    # Two calendar weeks of daily records; the query selects the
    # workdays of the first week (the paper's Section II-A example).
    schedule = MeasurementSchedule(datetime.date(2017, 6, 5), 14)
    workdays = schedule.weekdays_of_week(0)
    print(
        f"Schedule: {schedule.period_count} daily periods from "
        f"{schedule.start_date}; querying {workdays.name} "
        f"(periods {list(workdays.periods)})\n"
    )

    workload = PathWorkload(s=3, load_factor=2.0, key_seed=8)
    rng = np.random.default_rng(15)
    result = workload.generate(
        n_common=TRUE_CORRIDOR_COMMUTERS,
        volumes_per_location=[
            [DAILY_VOLUMES[loc]] * schedule.period_count for loc in CORRIDOR
        ],
        locations=CORRIDOR,
        rng=rng,
    )

    selected = [
        [records[p] for p in workdays.periods]
        for records in result.records_per_location
    ]

    estimate = PathPersistentEstimator(s=3).estimate(selected)
    print("Whole-corridor persistent traffic (all 4 intersections,")
    print("every workday):")
    print(f"  actual    : {TRUE_CORRIDOR_COMMUTERS}")
    print(f"  estimated : {estimate.estimate:,.0f}")
    print(f"  error     : {estimate.relative_error(TRUE_CORRIDOR_COMMUTERS):.2%}\n")

    print("Leg-by-leg persistent traffic (consecutive pairs), with")
    print("conservative 95% confidence intervals:")
    p2p = PointToPointPersistentEstimator(s=3)
    for a, b in zip(CORRIDOR, CORRIDOR[1:]):
        index_a = CORRIDOR.index(a)
        index_b = CORRIDOR.index(b)
        leg = p2p.estimate(selected[index_a], selected[index_b])
        low, high = point_to_point_confidence_interval(leg)
        print(
            f"  {a:>2} -> {b:<2}: {leg.estimate:>9,.0f}   "
            f"[{max(low, 0):,.0f}, {high:,.0f}]"
        )

    print(
        "\nEach leg's persistent volume exceeds the whole-corridor "
        "volume, as it must:\nvehicles can share one leg without "
        "driving the full arterial."
    )


if __name__ == "__main__":
    main()
