"""The accuracy-privacy tradeoff, measured from both sides.

Section VI-C's central claim: the load factor ``f`` and the
representative-bit count ``s`` trade estimation accuracy against
tracking resistance.  This example measures both sides empirically
for several (s, f) settings:

* accuracy — mean relative error of point persistent estimation on a
  synthetic 5-day workload;
* privacy — the noise-to-information ratio, analytically (Eq. 24's
  asymptotic form, as in Table II) *and* by running the simulated
  tracking adversary of Section V against real bitmaps.

Run:  python examples/privacy_tradeoff.py   (~1 minute)
"""

import numpy as np

from repro import PointPersistentEstimator
from repro.privacy.analysis import (
    asymptotic_noise_probability,
    asymptotic_noise_to_information_ratio,
)
from repro.privacy.attack import TrackingAttack
from repro.sketch.sizing import next_power_of_two
from repro.traffic.workloads import PointWorkload

SETTINGS = [(2, 1.0), (3, 2.0), (3, 3.0), (5, 2.0), (5, 4.0)]
DAYS = 5
PERSISTENT = 300
DAILY_VOLUME = 6000
RUNS = 15
ATTACK_TRIALS = 600


def accuracy(s: int, f: float) -> float:
    workload = PointWorkload(s=s, load_factor=f, key_seed=3)
    estimator = PointPersistentEstimator()
    errors = []
    for run in range(RUNS):
        rng = np.random.default_rng([s, int(f * 10), run])
        result = workload.generate(
            n_star=PERSISTENT,
            volumes=[DAILY_VOLUME] * DAYS,
            location=1,
            rng=rng,
            expected_volume=DAILY_VOLUME,
        )
        estimate = estimator.estimate(result.records)
        errors.append(estimate.relative_error(PERSISTENT))
    return sum(errors) / len(errors)


def empirical_privacy(s: int, f: float) -> float:
    m_prime = next_power_of_two(int(DAILY_VOLUME * f))
    n_prime = int(round(m_prime / f))  # realize the load f exactly
    attack = TrackingAttack(n_prime=n_prime, m_prime=m_prime, s=s, seed=9)
    return attack.run(ATTACK_TRIALS).empirical_ratio


def main() -> None:
    print(
        f"{'s':>3} {'f':>5} {'rel. error':>11} {'ratio (Eq.24)':>14} "
        f"{'ratio (attack)':>15} {'noise p':>8}"
    )
    for s, f in SETTINGS:
        error = accuracy(s, f)
        analytic = asymptotic_noise_to_information_ratio(s, f)
        empirical = empirical_privacy(s, f)
        noise = asymptotic_noise_probability(f)
        print(
            f"{s:>3} {f:>5.1f} {error:>10.2%} {analytic:>14.4f} "
            f"{empirical:>15.4f} {noise:>8.4f}"
        )
    print()
    print(
        "Reading the table: smaller f or larger s -> better privacy\n"
        "(bigger ratio) but worse accuracy.  The paper settles on\n"
        "s = 3, f = 2 — ratio ~2 with errors of a few percent — as the\n"
        "compromise; the simulated adversary agrees with Eq. 24."
    )


if __name__ == "__main__":
    main()
