"""Full protocol simulation of an instrumented city.

Everything the paper describes, running end to end on the Sioux Falls
road network: a trusted third party issues RSU certificates, RSUs at
three intersections broadcast beacons, commuter and transient vehicles
drive trip-table-sampled routes, verify certificates, answer with
one-time MAC addresses and hashed bit indices, and the central server
collects one bitmap per RSU per day.

After a simulated work week the server answers persistent-traffic
queries — and because this is a simulation, we can compare against the
exact ground truth (the ID-reporting strawman design the paper rejects
for privacy reasons).  A rogue RSU is also deployed and collects
nothing.

Run:  python examples/city_simulation.py   (~1 minute)
"""

from repro.crypto.pki import CertificateAuthority
from repro.network.road import sioux_falls_network
from repro.rsu.unit import RoadSideUnit
from repro.server.queries import (
    PointPersistentQuery,
    PointToPointPersistentQuery,
)
from repro.sim.protocol import ProtocolDriver
from repro.sim.scenario import CityScenario
from repro.traffic.sioux_falls import sioux_falls_trip_table

RSU_LOCATIONS = [10, 16, 17]  # the busiest zones of the network
DAYS = 5


def main() -> None:
    scenario = CityScenario(
        network=sioux_falls_network(),
        trip_table=sioux_falls_trip_table(),
        persistent_vehicles=150,
        transient_vehicles_per_period=800,
        rsu_locations=RSU_LOCATIONS,
        seed=11,
    )

    print(f"Simulating {DAYS} measurement periods (days)...")
    for summary in scenario.run(DAYS):
        reports = ", ".join(
            f"zone {loc}: {count}"
            for loc, count in sorted(summary.reports_by_location.items())
        )
        print(
            f"  day {summary.period}: {summary.encounters} V2I encounters "
            f"({reports})"
        )

    server = scenario.server
    truth = scenario.truth
    periods = tuple(range(DAYS))

    print("\nPoint persistent traffic over the work week:")
    for location in RSU_LOCATIONS:
        actual = truth.point_persistent(location, periods)
        estimate = server.point_persistent(
            PointPersistentQuery(location=location, periods=periods)
        )
        print(
            f"  zone {location}: actual {actual:>4}, "
            f"estimated {estimate.clamped:>7.1f}"
        )

    print("\nPoint-to-point persistent traffic:")
    for location in RSU_LOCATIONS[1:]:
        actual = truth.point_to_point_persistent(10, location, periods)
        estimate = server.point_to_point_persistent(
            PointToPointPersistentQuery(
                location_a=10, location_b=location, periods=periods
            )
        )
        print(
            f"  zone 10 <-> zone {location}: actual {actual:>4}, "
            f"estimated {estimate.clamped:>7.1f}"
        )

    # A rogue RSU tries to harvest traffic data without credentials
    # from the real authority; every vehicle stays silent (Sec. II-B).
    rogue_authority = CertificateAuthority(seed=666)
    rogue = RoadSideUnit(location=10, bitmap_size=4096,
                         credentials=rogue_authority.issue(10))
    rogue.start_period(0)
    driver = ProtocolDriver()
    probes = 0
    for obu in scenario.commuter_obus()[:50]:
        driver.run_encounter(obu, rogue)
        probes += 1
    record = rogue.end_period()
    print(
        f"\nRogue RSU at zone 10 beaconed {probes} vehicles and collected "
        f"{record.bitmap.ones()} bits — "
        + ("nothing, as designed." if record.bitmap.is_empty() else "PROBLEM!")
    )

    print(
        "\nNote: the 'actual' columns exist only because the simulation "
        "runs the paper's rejected ID-reporting design in parallel as "
        "ground truth; the deployed system stores bitmaps only."
    )


if __name__ == "__main__":
    main()
