"""Walkthrough of the paper's Figures 1-3: encoding, expansion, joins.

Figures 1-3 of the paper are illustrations rather than measurements;
this example reproduces them as live code on tiny bitmaps so every
mechanism is visible: bitwise-AND joining (Fig. 1), replication
expansion of different-size bitmaps (Fig. 2), and how common vs
transient vehicles interact in the joined result (Fig. 3).

Run:  python examples/bitmap_walkthrough.py
"""

import numpy as np

from repro import Bitmap, KeyGenerator, VehicleEncoder, VehiclePopulation
from repro.sketch.expansion import expand_to
from repro.sketch.join import and_join


def show(label: str, bitmap: Bitmap) -> None:
    bits = "".join("1" if b else "0" for b in bitmap)
    print(f"  {label:<14} {bits}")


def figure1() -> None:
    print("Fig. 1 — combining two same-size bitmaps by bitwise AND")
    b1 = Bitmap(8, [1, 1, 0, 0, 1, 0, 1, 0])
    b2 = Bitmap(8, [1, 0, 0, 1, 1, 0, 0, 0])
    show("B1", b1)
    show("B2", b2)
    show("B1 AND B2", b1 & b2)
    print()


def figure2() -> None:
    print("Fig. 2 — expanding a smaller bitmap before the AND")
    b1 = Bitmap(8, [1, 1, 0, 0, 1, 0, 1, 0])
    b2 = Bitmap(4, [1, 0, 1, 0])
    e2 = expand_to(b2, 8)
    show("B1 (8 bits)", b1)
    show("B2 (4 bits)", b2)
    show("E2 = B2 x2", e2)
    show("B1 AND E2", b1 & e2)
    print()


def figure3() -> None:
    print("Fig. 3 — common vs transient vehicles across three periods")
    rng = np.random.default_rng(3)
    keygen = KeyGenerator(master_seed=1, s=3)
    encoder = VehicleEncoder()
    location = 5

    common = VehiclePopulation.random(2, keygen, rng)  # black boxes
    sizes = [16, 32, 32]  # B1 is half the size of B2, B3
    records = []
    for size in sizes:
        bitmap = Bitmap(size)
        common.encode_into(bitmap, location, encoder)
        transients = VehiclePopulation.random(4, keygen, rng)  # white boxes
        transients.encode_into(bitmap, location, encoder)
        records.append(bitmap)

    for index, bitmap in enumerate(records, start=1):
        show(f"B{index} ({bitmap.size}b)", bitmap)
    joined = and_join(records)
    show("E* (AND)", joined)

    common_indices = sorted(
        set(int(i) for i in common.encoding_indices(location, joined.size, encoder))
    )
    print(f"  common vehicles' aligned bits in E*: {common_indices}")
    for index in common_indices:
        assert joined.get(index), "a common vehicle's bit must survive the AND"
    survivors = joined.ones()
    print(
        f"  E* has {survivors} ones for {len(common_indices)} common-vehicle "
        "bits — any extras are transient hash collisions, the noise the\n"
        "  split-join estimator of Section III-B subtracts out."
    )
    print()


if __name__ == "__main__":
    figure1()
    figure2()
    figure3()
