"""An operations view: rolling monitoring plus source ranking.

Puts the operator-facing extensions together on one simulated city:

* a :class:`~repro.server.monitor.PersistenceMonitor` watches the
  busiest intersection with a sliding 3-day window, re-estimating its
  persistent traffic every evening as the day's record arrives;
* after a work week, :func:`~repro.server.planner.
  rank_persistent_sources` answers the paper's Section I question —
  which locations feed the congested target with traffic you can
  count on *every* day — directly from the server's records;
* the whole run uses an imperfect V2I channel (3% of passes missed).

Run:  python examples/operations_dashboard.py   (~1 minute)
"""

from repro.network.road import sioux_falls_network
from repro.server.monitor import PersistenceMonitor
from repro.server.planner import persistent_flow_matrix, rank_persistent_sources
from repro.sim.scenario import CityScenario
from repro.traffic.sioux_falls import sioux_falls_trip_table

TARGET = 10
SOURCES = (16, 17, 15)
DAYS = 5
WINDOW = 3


def main() -> None:
    scenario = CityScenario(
        network=sioux_falls_network(),
        trip_table=sioux_falls_trip_table(),
        persistent_vehicles=250,
        transient_vehicles_per_period=900,
        rsu_locations=[TARGET, *SOURCES],
        seed=23,
        detection_rate=0.97,
    )

    monitor = PersistenceMonitor(location=TARGET, window=WINDOW)
    print(f"Watching zone {TARGET} with a {WINDOW}-day rolling window:\n")
    for summary in scenario.run(DAYS):
        record = scenario.server.store.require(TARGET, summary.period)
        sample = monitor.push(record)
        status = (
            f"rolling persistent ~ {sample.estimate.clamped:6.1f}"
            if sample is not None
            else "warming up"
        )
        print(
            f"  day {summary.period}: {summary.encounters:4d} passes, "
            f"{summary.missed:2d} missed by the channel -> {status}"
        )
    print(f"\ntrend over the last windows: {monitor.trend():+.1f} vehicles")

    periods = tuple(range(DAYS))
    print(f"\nPersistent sources feeding zone {TARGET} (the relief")
    print("priority list of the paper's introduction):")
    ranked = rank_persistent_sources(
        scenario.server, TARGET, SOURCES, periods
    )
    for rank, source in enumerate(ranked, start=1):
        truth = scenario.truth.point_to_point_persistent(
            source.location, TARGET, periods
        )
        print(
            f"  {rank}. zone {source.location}: ~{source.volume:6.1f} "
            f"vehicles/day every day (exact truth: {truth})"
        )

    print("\nPairwise persistent-flow matrix (vehicles/day):")
    matrix = persistent_flow_matrix(
        scenario.server, (TARGET, *SOURCES), periods
    )
    for (a, b), volume in sorted(matrix.items()):
        print(f"  {a:>2} <-> {b:<2}: {volume:8.1f}")

    print(
        "\nEverything above came from bitmaps: the channel lost passes, "
        "the server\nnever saw an identity, and the operator still got "
        "a live dashboard."
    )


if __name__ == "__main__":
    main()
