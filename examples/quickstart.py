"""Quickstart: measure persistent traffic at one intersection.

Five days of traffic pass a single RSU.  400 commuters show up every
day (the persistent traffic); a few thousand transient vehicles come
and go.  Each day produces one privacy-preserving bitmap — no vehicle
ID is ever recorded — and the point persistent estimator recovers the
commuter count from the five bitmaps alone.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Bitmap,
    KeyGenerator,
    PointPersistentEstimator,
    VehicleEncoder,
    VehiclePopulation,
    bitmap_size_for_volume,
)

LOCATION = 12  # the instrumented intersection's ID
COMMUTERS = 400
DAYS = 5
EXPECTED_DAILY_VOLUME = 6000  # the server's historical average
LOAD_FACTOR = 2.0  # the paper's accuracy/privacy compromise (f = 2)


def main() -> None:
    rng = np.random.default_rng(42)

    # Every vehicle holds a private key K_v and a constants array C
    # (s = 3 representative bits); nothing of this is ever transmitted.
    keygen = KeyGenerator(master_seed=7, s=3)
    encoder = VehicleEncoder()

    commuters = VehiclePopulation.random(COMMUTERS, keygen, rng)

    # Eq. 2: the bitmap size comes from the expected volume.
    size = bitmap_size_for_volume(EXPECTED_DAILY_VOLUME, LOAD_FACTOR)
    print(f"bitmap size m = {size} bits ({size // 8} bytes per day)")

    records = []
    for day in range(DAYS):
        daily_volume = int(rng.integers(4001, 8001))
        bitmap = Bitmap(size)
        commuters.encode_into(bitmap, LOCATION, encoder)
        transients = VehiclePopulation.random(
            daily_volume - COMMUTERS, keygen, rng
        )
        transients.encode_into(bitmap, LOCATION, encoder)
        records.append(bitmap)
        print(
            f"day {day}: {daily_volume} vehicles -> "
            f"{bitmap.ones()} bits set ({bitmap.one_fraction():.1%} full)"
        )

    estimate = PointPersistentEstimator().estimate(records)
    error = estimate.relative_error(COMMUTERS)
    print()
    print(f"actual persistent traffic : {COMMUTERS}")
    print(f"estimated (Eq. 12)        : {estimate.estimate:.1f}")
    print(f"relative error            : {error:.2%}")
    print()
    print(
        "The estimate came from bitmaps alone — the server never saw a "
        "vehicle ID, a MAC address, or any fixed per-vehicle value."
    )


if __name__ == "__main__":
    main()
