"""A transportation study on the Sioux Falls network.

The scenario of the paper's Section VI-A, as a planner would run it:
the busiest location L' (zone 10, 451,000 vehicles involved) is
consistently congested.  Which sources feed it, and how much *stable*
(persistent) traffic can we always expect from each?  That persistent
point-to-point volume is what sets the priority order for traffic
relief measures (Section I).

The study estimates persistent traffic from five days of
privacy-preserving records between L' and three candidate source
locations, and ranks the sources — then compares against the ground
truth the simulation knows.

Run:  python examples/sioux_falls_study.py   (~30 seconds)
"""

import numpy as np

from repro import PointToPointPersistentEstimator
from repro.traffic.sioux_falls import (
    L_PRIME_ZONE,
    M_PRIME,
    N_PRIME,
    sioux_falls_trip_table,
    table1_parameters,
)
from repro.traffic.workloads import PointToPointWorkload

DAYS = 5
STUDIED_ROWS = (0, 3, 7)  # a large, a mid, and a small source


def main() -> None:
    table = sioux_falls_trip_table()
    print(
        f"Sioux Falls: {table.zone_count} zones, "
        f"{table.total_volume():,.0f} daily trips"
    )
    print(
        f"Busiest location L' = zone {L_PRIME_ZONE} "
        f"({table.involved_volume(L_PRIME_ZONE):,.0f} vehicles involved)\n"
    )

    workload = PointToPointWorkload(s=3, load_factor=2.0, key_seed=1)
    estimator = PointToPointPersistentEstimator(s=3)
    rng = np.random.default_rng(7)

    true_header = "true n''"
    print(f"{'source':>8} {'n':>9} {true_header:>9} {'estimate':>10} {'error':>7}")
    ranking = []
    rows = table1_parameters()
    for row_index in STUDIED_ROWS:
        row = rows[row_index]
        result = workload.generate(
            n_double_prime=row.n_double_prime,
            volumes_a=[row.n] * DAYS,
            volumes_b=[N_PRIME] * DAYS,
            location_a=row.zone,
            location_b=L_PRIME_ZONE,
            rng=rng,
            fixed_sizes=([row.m] * DAYS, [M_PRIME] * DAYS),
        )
        estimate = estimator.estimate(result.records_a, result.records_b)
        error = estimate.relative_error(row.n_double_prime)
        ranking.append((estimate.estimate, row))
        print(
            f"zone {row.zone:>3} {row.n:>9,} {row.n_double_prime:>9,} "
            f"{estimate.estimate:>10,.0f} {error:>6.2%}"
        )

    ranking.sort(reverse=True)
    print("\nRelief priority by estimated persistent contribution:")
    for rank, (estimate, row) in enumerate(ranking, start=1):
        print(f"  {rank}. zone {row.zone} (~{estimate:,.0f} vehicles/day, every day)")

    truth_order = sorted(
        (rows[i] for i in STUDIED_ROWS),
        key=lambda r: r.n_double_prime,
        reverse=True,
    )
    estimated_order = [row.zone for _, row in ranking]
    assert estimated_order == [r.zone for r in truth_order], (
        "the estimated ranking should match the ground-truth ranking"
    )
    print("\nThe privacy-preserving ranking matches the ground truth.")


if __name__ == "__main__":
    main()
